//! # gm-designs — benchmark designs for the GoldMine reproduction
//!
//! Every RTL design the paper's experiments touch, as parseable Verilog
//! sources plus convenience constructors:
//!
//! * the paper's own blocks: [`cex_small`], [`arbiter2`] (the §6 RTL
//!   verbatim), [`arbiter4`];
//! * Rigel-like pipeline stages with the paper's signal names:
//!   [`fetch_stage`], [`decode_stage`], [`wb_stage`];
//! * ITC'99-style blocks: [`b01`], [`b02`], [`b09`] (re-implemented from
//!   the published descriptions) and [`b12_lite`], [`b17_lite`],
//!   [`b18_lite`] (scaled structural analogues of the large benchmarks —
//!   see DESIGN.md for the substitution notes).
//!
//! [`catalog`] enumerates everything with per-design mining defaults, so
//! the experiment harness can sweep the whole set.

#![warn(missing_docs)]

mod builders;
pub mod sources;

pub use builders::arbiter2_builder;

use gm_rtl::{parse_verilog, Module};

/// Metadata for one benchmark design.
#[derive(Clone, Copy, Debug)]
pub struct DesignInfo {
    /// Design name (also the Verilog module name).
    pub name: &'static str,
    /// The Verilog source.
    pub source: &'static str,
    /// Suggested mining window length for the refinement engine.
    pub window: u32,
    /// Whether the design is sequential (has state).
    pub sequential: bool,
    /// One-line description.
    pub description: &'static str,
}

impl DesignInfo {
    /// Parses the design.
    ///
    /// # Panics
    ///
    /// Panics if the bundled source fails to parse — a bug in this
    /// crate, guarded by tests.
    pub fn module(&self) -> Module {
        parse_verilog(self.source).expect("bundled design parses")
    }
}

/// All bundled designs with their mining defaults.
pub fn catalog() -> Vec<DesignInfo> {
    vec![
        DesignInfo {
            name: "cex_small",
            source: sources::CEX_SMALL,
            window: 0,
            sequential: false,
            description: "small combinational example block (paper Fig. 2)",
        },
        DesignInfo {
            name: "arbiter2",
            source: sources::ARBITER2,
            window: 1,
            sequential: true,
            description: "two-port round-robin arbiter (paper §6 RTL)",
        },
        DesignInfo {
            name: "arbiter4",
            source: sources::ARBITER4,
            window: 1,
            sequential: true,
            description: "four-port rotating-priority arbiter with more state",
        },
        DesignInfo {
            name: "fetch_stage",
            source: sources::FETCH_STAGE,
            window: 1,
            sequential: true,
            description: "Rigel-like instruction fetch stage",
        },
        DesignInfo {
            name: "decode_stage",
            source: sources::DECODE_STAGE,
            window: 0,
            sequential: false,
            description: "Rigel-like instruction decode stage",
        },
        DesignInfo {
            name: "wb_stage",
            source: sources::WB_STAGE,
            window: 0,
            sequential: false,
            description: "Rigel-like writeback stage",
        },
        DesignInfo {
            name: "b01",
            source: sources::B01,
            window: 1,
            sequential: true,
            description: "ITC'99 b01-style serial flow comparator FSM",
        },
        DesignInfo {
            name: "b02",
            source: sources::B02,
            window: 1,
            sequential: true,
            description: "ITC'99 b02-style BCD recognizer FSM",
        },
        DesignInfo {
            name: "b09",
            source: sources::B09,
            window: 1,
            sequential: true,
            description: "ITC'99 b09-style serial converter",
        },
        DesignInfo {
            name: "b12_lite",
            source: sources::B12_LITE,
            window: 1,
            sequential: true,
            description: "scaled b12-style game controller (FSM + LFSR + counter)",
        },
        DesignInfo {
            name: "b17_lite",
            source: sources::B17_LITE,
            window: 1,
            sequential: true,
            description: "scaled b17-style control/datapath block",
        },
        DesignInfo {
            name: "b18_lite",
            source: sources::B18_LITE,
            window: 1,
            sequential: true,
            description: "scaled b18-style two-unit bus block",
        },
    ]
}

/// Looks a bundled design up by name.
pub fn by_name(name: &str) -> Option<DesignInfo> {
    catalog().into_iter().find(|d| d.name == name)
}

macro_rules! design_fn {
    ($(#[$doc:meta])* $fn_name:ident, $src:ident) => {
        $(#[$doc])*
        pub fn $fn_name() -> Module {
            parse_verilog(sources::$src).expect("bundled design parses")
        }
    };
}

design_fn!(
    /// The paper's small combinational example block.
    cex_small,
    CEX_SMALL
);
design_fn!(
    /// The paper's two-port arbiter (§6 RTL, verbatim).
    arbiter2,
    ARBITER2
);
design_fn!(
    /// The four-port arbiter with rotating priority.
    arbiter4,
    ARBITER4
);
design_fn!(
    /// The Rigel-like fetch stage.
    fetch_stage,
    FETCH_STAGE
);
design_fn!(
    /// The Rigel-like decode stage.
    decode_stage,
    DECODE_STAGE
);
design_fn!(
    /// The Rigel-like writeback stage.
    wb_stage,
    WB_STAGE
);
design_fn!(
    /// The b01-style serial flow comparator.
    b01,
    B01
);
design_fn!(
    /// The b02-style BCD recognizer.
    b02,
    B02
);
design_fn!(
    /// The b09-style serial converter.
    b09,
    B09
);
design_fn!(
    /// The scaled b12-style game controller.
    b12_lite,
    B12_LITE
);
design_fn!(
    /// The scaled b17-style block.
    b17_lite,
    B17_LITE
);
design_fn!(
    /// The scaled b18-style two-unit bus block.
    b18_lite,
    B18_LITE
);
