//! Sanity and behavioral tests for every bundled design.

use gm_designs::{arbiter2_builder, by_name, catalog};
use gm_mc::{blast, Checker, ExplicitLimits, ReachableStates};
use gm_rtl::{elaborate, Bv};
use gm_sim::{collect_vectors, NopObserver, RandomStimulus, Simulator};
use proptest::prelude::*;

#[test]
fn every_design_parses_elaborates_and_blasts() {
    for d in catalog() {
        let m = d.module();
        assert_eq!(m.name(), d.name);
        let e = elaborate(&m).unwrap_or_else(|err| panic!("{}: {err}", d.name));
        blast(&m, &e).unwrap_or_else(|err| panic!("{}: {err}", d.name));
        assert_eq!(
            !m.state_signals().is_empty(),
            d.sequential,
            "{} sequential flag",
            d.name
        );
        if d.sequential {
            assert!(m.clock().is_some(), "{} has a clock", d.name);
            assert!(m.reset().is_some(), "{} has a reset", d.name);
        }
    }
}

#[test]
fn every_design_simulates_random_stimulus() {
    for d in catalog() {
        let m = d.module();
        let mut sim = Simulator::new(&m).unwrap();
        if let Some(rst) = m.reset() {
            sim.set_input(rst, Bv::one_bit());
            sim.step();
            sim.set_input(rst, Bv::zero_bit());
        }
        let vectors = collect_vectors(&mut RandomStimulus::new(&m, 99, 200));
        let trace = sim.run_vectors(&vectors, &mut NopObserver);
        assert_eq!(trace.len(), 200, "{}", d.name);
    }
}

#[test]
fn catalog_lookup() {
    assert!(by_name("arbiter2").is_some());
    assert!(by_name("nope").is_none());
    assert_eq!(catalog().len(), 12);
}

#[test]
fn small_designs_have_expected_reachable_state_counts() {
    let cases = [
        ("arbiter2", 3usize), // 00, 01, 10 — never both grants
        ("b02", 10),          // 7 FSM states x output reg, minus unreachable pairs
    ];
    for (name, expected) in cases {
        let m = by_name(name).unwrap().module();
        let e = elaborate(&m).unwrap();
        let b = blast(&m, &e).unwrap();
        let r = ReachableStates::explore(&b, &ExplicitLimits::default()).unwrap();
        assert_eq!(r.len(), expected, "{name}");
    }
}

#[test]
fn fetch_stage_honors_mispredict_priority() {
    let m = by_name("fetch_stage").unwrap().module();
    let mut sim = Simulator::new(&m).unwrap();
    let rst = m.require("rst").unwrap();
    let rdvl = m.require("icache_rdvl_i").unwrap();
    let stall = m.require("stall_in").unwrap();
    let mis = m.require("branch_mispredict").unwrap();
    let bpc = m.require("branch_pc").unwrap();
    let pc = m.require("pc").unwrap();
    let valid = m.require("valid").unwrap();

    sim.set_input(rst, Bv::one_bit());
    sim.step();
    sim.set_input(rst, Bv::zero_bit());

    // Fetch two instructions.
    sim.set_input(rdvl, Bv::one_bit());
    sim.step();
    sim.step();
    assert_eq!(sim.value(pc), Bv::new(2, 4));
    assert_eq!(sim.value(valid), Bv::one_bit());

    // Stall holds everything even with rdvl high.
    sim.set_input(stall, Bv::one_bit());
    sim.step();
    assert_eq!(sim.value(pc), Bv::new(2, 4));

    // Mispredict overrides stall and redirects.
    sim.set_input(mis, Bv::one_bit());
    sim.set_input(bpc, Bv::new(9, 4));
    sim.step();
    assert_eq!(sim.value(pc), Bv::new(9, 4));
    assert_eq!(sim.value(valid), Bv::zero_bit());
}

#[test]
fn decode_stage_classifies_opcodes() {
    let m = by_name("decode_stage").unwrap().module();
    let mut sim = Simulator::new(&m).unwrap();
    let instr = m.require("instr").unwrap();
    let iv = m.require("instr_valid").unwrap();
    sim.set_input(iv, Bv::one_bit());

    let opcode_at = |op: u64| op << 9;
    let cases = [
        (0u64, "is_alu"),
        (3, "is_branch"),
        (5, "is_mem"),
        (7, "illegal"),
    ];
    for (op, flag) in cases {
        sim.set_input(instr, Bv::new(opcode_at(op), 12));
        sim.settle();
        let f = m.require(flag).unwrap();
        assert_eq!(sim.value(f), Bv::one_bit(), "opcode {op} sets {flag}");
    }
    // Invalid instruction decodes to nothing.
    sim.set_input(iv, Bv::zero_bit());
    sim.settle();
    for flag in ["is_alu", "is_branch", "is_mem", "illegal"] {
        let f = m.require(flag).unwrap();
        assert_eq!(sim.value(f), Bv::zero_bit());
    }
}

#[test]
fn arbiter4_grants_are_one_hot_and_rotate() {
    let m = by_name("arbiter4").unwrap().module();
    let mut checker = Checker::new(&m).unwrap();
    // Reachability: no two grants simultaneously (check via all states).
    let reach = checker.reachable_count().expect("arbiter4 fits explicit");
    assert!(reach > 1);
    // Simulate all-requesting traffic: the grant should rotate fairly.
    let mut sim = Simulator::new(&m).unwrap();
    let rst = m.require("rst").unwrap();
    sim.set_input(rst, Bv::one_bit());
    sim.step();
    sim.set_input(rst, Bv::zero_bit());
    for name in ["req0", "req1", "req2", "req3"] {
        sim.set_input(m.require(name).unwrap(), Bv::one_bit());
    }
    let gnts = ["gnt0", "gnt1", "gnt2", "gnt3"].map(|n| m.require(n).unwrap());
    let mut granted = [0u32; 4];
    for _ in 0..16 {
        sim.step();
        let high: Vec<usize> = (0..4)
            .filter(|&i| sim.value(gnts[i]).is_nonzero())
            .collect();
        assert!(high.len() <= 1, "grants must be one-hot: {high:?}");
        if let Some(&i) = high.first() {
            granted[i] += 1;
        }
    }
    assert!(
        granted.iter().all(|&g| g >= 2),
        "round robin starves a port: {granted:?}"
    );
}

#[test]
fn b09_emits_shifted_data() {
    let m = by_name("b09").unwrap().module();
    let mut sim = Simulator::new(&m).unwrap();
    let rst = m.require("rst").unwrap();
    let x = m.require("x").unwrap();
    let y = m.require("y").unwrap();
    sim.set_input(rst, Bv::one_bit());
    sim.step();
    sim.set_input(rst, Bv::zero_bit());
    // Kick off a load with x=1 and feed a pattern.
    let bits = [true, true, false, true, false, false, false, false, false];
    let mut saw_y_high = false;
    for b in bits {
        sim.set_input(x, Bv::from_bool(b));
        sim.step();
        saw_y_high |= sim.value(y).is_nonzero();
    }
    assert!(saw_y_high, "converter must emit data on y");
}

#[test]
fn builder_and_parsed_arbiters_agree_cycle_for_cycle() {
    let parsed = gm_designs::arbiter2();
    let built = arbiter2_builder();
    let mut sim_p = Simulator::new(&parsed).unwrap();
    let mut sim_b = Simulator::new(&built).unwrap();
    let inputs = ["rst", "req0", "req1"];
    let outputs = ["gnt0", "gnt1"];
    let mut state = 0x12345u64;
    for cycle in 0..500 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        for (i, name) in inputs.iter().enumerate() {
            let v = Bv::from_bool((state >> (i + 7)) & 1 == 1 || (cycle == 0 && i == 0));
            sim_p.set_input(parsed.require(name).unwrap(), v);
            sim_b.set_input(built.require(name).unwrap(), v);
        }
        sim_p.step();
        sim_b.step();
        for name in outputs {
            assert_eq!(
                sim_p.value(parsed.require(name).unwrap()),
                sim_b.value(built.require(name).unwrap()),
                "cycle {cycle} signal {name}"
            );
        }
    }
}

#[test]
fn print_parse_roundtrip_is_behaviorally_equivalent() {
    // to_verilog . parse_verilog must preserve cycle semantics on every
    // bundled design (500 random cycles, all outputs compared).
    for d in catalog() {
        let original = d.module();
        let printed = gm_rtl::to_verilog(&original);
        let reparsed = gm_rtl::parse_verilog(&printed)
            .unwrap_or_else(|e| panic!("{}: {e}\n{printed}", d.name));
        let mut sim_a = Simulator::new(&original).unwrap();
        let mut sim_b = Simulator::new(&reparsed).unwrap();
        let vectors = collect_vectors(&mut RandomStimulus::new(&original, 17, 500));
        if let Some(rst) = original.reset() {
            for sim in [&mut sim_a, &mut sim_b] {
                sim.set_input(rst, Bv::one_bit());
                sim.step();
                sim.set_input(rst, Bv::zero_bit());
            }
        }
        for (cycle, vec) in vectors.iter().enumerate() {
            // Signal ids can differ after reparse; drive by name.
            for (sig, v) in vec {
                let name = original.signal(*sig).name();
                sim_a.set_input(*sig, *v);
                sim_b.set_input(reparsed.require(name).unwrap(), *v);
            }
            sim_a.step();
            sim_b.step();
            for out in original.outputs() {
                let name = original.signal(out).name();
                assert_eq!(
                    sim_a.value(out),
                    sim_b.value(reparsed.require(name).unwrap()),
                    "{} cycle {cycle} output {name}",
                    d.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Behavioral simulator and bit-blasted netlist agree on every design
    /// under random stimulus — the cross-check keeping the two semantics
    /// honest.
    #[test]
    fn behavioral_and_netlist_simulation_agree(seed in 0u64..1000) {
        for d in catalog() {
            let m = d.module();
            let e = elaborate(&m).unwrap();
            let blasted = blast(&m, &e).unwrap();
            let mut sim = Simulator::new(&m).unwrap();
            if let Some(rst) = m.reset() {
                sim.set_input(rst, Bv::one_bit());
                sim.step();
                sim.set_input(rst, Bv::zero_bit());
            }
            let mut state: Vec<bool> = blasted.aig.initial_state();
            let vectors = collect_vectors(&mut RandomStimulus::new(&m, seed, 20));
            for vec in &vectors {
                sim.set_inputs(vec);
                sim.settle();
                // Build the AIG input assignment from the same vector.
                let inputs: Vec<bool> = blasted
                    .input_bits
                    .iter()
                    .map(|&(sig, bit)| sim.value(sig).bit(bit))
                    .collect();
                let vals = blasted.aig.eval(&inputs, &state);
                // Every output bit must match the behavioral simulator.
                for out in m.outputs() {
                    for bit in 0..m.signal_width(out) {
                        let netlist = blasted.aig.lit_value(&vals, blasted.signal_bit(out, bit));
                        let behav = sim.value(out).bit(bit);
                        prop_assert_eq!(netlist, behav,
                            "{} {}[{}] diverged", d.name, m.signal(out).name(), bit);
                    }
                }
                state = blasted.aig.next_state(&vals);
                sim.step();
            }
        }
    }
}
