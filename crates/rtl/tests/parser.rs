//! Integration tests: parsing realistic Verilog-subset sources end to end.

use gm_rtl::{cone_of, elaborate, parse_verilog, parse_verilog_all, Bv, RtlError, SignalKind};

const ARBITER2: &str = "
// The paper's two-port round-robin arbiter with priority on port 0.
module arbiter2(input clk, input rst, input req0, input req1,
                output reg gnt0, output reg gnt1);
  always @(posedge clk)
    if (rst) begin
      gnt0 <= 0;
      gnt1 <= 0;
    end else begin
      gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
      gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
    end
endmodule
";

#[test]
fn parses_paper_arbiter() {
    let m = parse_verilog(ARBITER2).unwrap();
    assert_eq!(m.name(), "arbiter2");
    assert_eq!(m.inputs().len(), 4);
    assert_eq!(m.outputs().len(), 2);
    assert_eq!(m.clock(), m.find("clk"));
    assert_eq!(m.reset(), m.find("rst"));
    let elab = elaborate(&m).unwrap();
    let gnt0 = m.require("gnt0").unwrap();
    assert!(elab.is_state(gnt0));
    let cone = cone_of(&m, &elab, gnt0);
    let names: Vec<&str> = cone.inputs.iter().map(|s| m.signal(*s).name()).collect();
    assert_eq!(names, vec!["req0", "req1"]);
    // gnt0's next-state reads gnt0 itself: it is in its own cone state.
    assert!(cone.state.contains(&gnt0));
}

#[test]
fn non_ansi_ports_and_merged_decls() {
    let src = "
    module m(a, b, y);
      input a;
      input [3:0] b;
      output y;
      reg y;
      wire t;
      assign t = a & b[0];
      always @(posedge a) y <= t;
    endmodule";
    let m = parse_verilog(src).unwrap();
    assert_eq!(m.signal(m.require("b").unwrap()).width(), 4);
    let y = m.require("y").unwrap();
    assert_eq!(m.signal(y).kind(), SignalKind::Output);
    elaborate(&m).unwrap();
}

#[test]
fn localparams_in_ranges_labels_and_fsm_marking() {
    let src = "
    module fsm(input clk, input rst, input go, output reg done);
      localparam IDLE = 2'b00;
      localparam RUN  = 2'b01;
      localparam DONE = 2'b10;
      localparam W = 2;
      reg [W-1:0] state;
      always @(posedge clk) begin
        if (rst) begin
          state <= IDLE;
          done <= 0;
        end else begin
          case (state)
            IDLE: begin
              done <= 0;
              if (go) state <= RUN; else state <= IDLE;
            end
            RUN: begin
              state <= DONE;
              done <= 0;
            end
            DONE, 2'b11: begin
              state <= IDLE;
              done <= 1;
            end
          endcase
        end
      end
    endmodule";
    let m = parse_verilog(src).unwrap();
    let state = m.require("state").unwrap();
    assert_eq!(m.signal(state).width(), 2);
    assert!(m.fsm_regs().contains(&state), "case subject marked as FSM");
    elaborate(&m).unwrap();
}

#[test]
fn reset_branch_constants_become_init_values() {
    let src = "
    module m(input clk, input rst, input d, output reg [3:0] q);
      always @(posedge clk)
        if (rst) q <= 4'd9;
        else q <= {q[2:0], d};
    endmodule";
    let m = parse_verilog(src).unwrap();
    let q = m.require("q").unwrap();
    assert_eq!(m.signal(q).init(), Bv::new(9, 4));
}

#[test]
fn expression_precedence_matches_verilog() {
    let src = "
    module m(input a, input b, input c, output y, output z, output [3:0] s);
      assign y = a | b & c;      // & binds tighter than |
      assign z = ~a & b == c;    // == binds tighter than &
      assign s = {a, b} + 4'd1 << 1;
    endmodule";
    let m = parse_verilog(src).unwrap();
    elaborate(&m).unwrap();
    // Evaluate y = a | (b & c) at a=0, b=1, c=1 -> 1; (a|b)&c would also be
    // 1, so use a=1, b=0, c=0: correct parse gives 1, wrong parse gives 0.
    let y = m.require("y").unwrap();
    let a = m.require("a").unwrap();
    let lookup = |s: gm_rtl::SignalId| {
        if s == a {
            Bv::one_bit()
        } else {
            Bv::zero_bit()
        }
    };
    // Find y's driving expression through the process list.
    let mut val = None;
    for p in m.processes() {
        for st in &p.body {
            if let gm_rtl::StmtKind::Assign { lhs, rhs } = &st.kind {
                if *lhs == y {
                    val = Some(rhs.eval(&lookup));
                }
            }
        }
    }
    assert_eq!(val.unwrap(), Bv::one_bit());
}

#[test]
fn ternary_slice_index_concat() {
    let src = "
    module m(input [7:0] d, input s, output [3:0] y, output b);
      assign y = s ? d[7:4] : d[3:0];
      assign b = d[6] ^ ^d[3:0];
    endmodule";
    let m = parse_verilog(src).unwrap();
    elaborate(&m).unwrap();
}

#[test]
fn multiple_modules_in_one_source() {
    let src = "
    module a(input x, output y); assign y = ~x; endmodule
    module b(input x, output y); assign y = x; endmodule";
    let mods = parse_verilog_all(src).unwrap();
    assert_eq!(mods.len(), 2);
    assert_eq!(mods[0].name(), "a");
    assert_eq!(mods[1].name(), "b");
    assert!(parse_verilog(src).is_err(), "single-module API rejects two");
}

#[test]
fn syntax_errors_carry_positions() {
    let err = parse_verilog("module m(input a output y); endmodule").unwrap_err();
    match err {
        RtlError::Parse { line, .. } => assert_eq!(line, 1),
        other => panic!("expected parse error, got {other}"),
    }
}

#[test]
fn unknown_signal_in_body_is_reported() {
    let err = parse_verilog("module m(input a, output y); assign y = nope; endmodule").unwrap_err();
    assert_eq!(
        err,
        RtlError::UnknownSignal {
            name: "nope".into()
        }
    );
}

#[test]
fn case_label_exceeding_subject_width_rejected() {
    let src = "
    module m(input clk, input [1:0] s, output reg y);
      always @(posedge clk)
        case (s)
          2'b00: y <= 0;
          7: y <= 1;
          default: y <= 0;
        endcase
    endmodule";
    match parse_verilog(src).unwrap_err() {
        RtlError::Width { msg } => assert!(msg.contains("label")),
        other => panic!("expected width error, got {other}"),
    }
}

#[test]
fn comb_always_with_sensitivity_list() {
    let src = "
    module m(input a, input b, output reg y);
      always @(a or b)
        if (a & b) y = 1; else y = 0;
    endmodule";
    let m = parse_verilog(src).unwrap();
    let e = elaborate(&m).unwrap();
    assert_eq!(e.seq_processes().len(), 0);
    assert_eq!(e.comb_order().len(), 1);
}

#[test]
fn async_reset_style_sensitivity() {
    // `posedge rst` in the list: rst must not be mistaken for the clock.
    let src = "
    module m(input clk, input rst, input d, output reg q);
      always @(posedge clk or posedge rst)
        if (rst) q <= 0;
        else q <= d;
    endmodule";
    let m = parse_verilog(src).unwrap();
    assert_eq!(m.clock(), m.find("clk"));
    assert_eq!(m.reset(), m.find("rst"));
}
