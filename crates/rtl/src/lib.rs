//! # gm-rtl — RTL intermediate representation and front end
//!
//! The substrate layer of the GoldMine coverage-closure reproduction:
//! a behavioral register-transfer-level IR with
//!
//! * fixed-width two-valued values ([`Bv`]),
//! * expressions ([`Expr`]) and behavioral statements ([`Stmt`]) grouped
//!   into combinational/sequential [`Process`]es inside a [`Module`],
//! * a [`ModuleBuilder`] for programmatic construction,
//! * a parser for a synthesizable Verilog subset ([`parse_verilog`]),
//! * elaboration ([`elaborate`]) validating single drivers, absence of
//!   combinational loops and latches, and computing evaluation order,
//! * cone-of-influence analysis ([`cone_of`]) — the paper's static
//!   analyzer that restricts mining to each output's relevant variables.
//!
//! # Examples
//!
//! Parse, elaborate and inspect the paper's two-port arbiter:
//!
//! ```
//! let src = "
//! module arbiter2(input clk, input rst, input req0, input req1,
//!                 output reg gnt0, output reg gnt1);
//!   always @(posedge clk)
//!     if (rst) begin
//!       gnt0 <= 0;
//!       gnt1 <= 0;
//!     end else begin
//!       gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
//!       gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
//!     end
//! endmodule";
//! let module = gm_rtl::parse_verilog(src)?;
//! let elab = gm_rtl::elaborate(&module)?;
//! let gnt0 = module.require("gnt0")?;
//! let cone = gm_rtl::cone_of(&module, &elab, gnt0);
//! assert_eq!(cone.inputs.len(), 2); // req0, req1 (clk/rst excluded)
//! # Ok::<(), gm_rtl::RtlError>(())
//! ```

#![warn(missing_docs)]

mod bv;
mod cone;
mod elab;
mod error;
mod expr;
mod module;
mod parse;
mod print;
mod stmt;

pub use bv::{Bv, MAX_WIDTH};
pub use cone::{cone_of, output_cones, Cone};
pub use elab::{elaborate, Elab};
pub use error::{Result, RtlError};
pub use expr::{BinaryOp, Expr, UnaryOp};
pub use module::{CaseBuilder, Module, ModuleBuilder, Signal, SignalId, SignalKind, StmtBuilder};
pub use parse::{parse_verilog, parse_verilog_all};
pub use print::to_verilog;
pub use stmt::{CaseArm, Process, ProcessKind, Stmt, StmtId, StmtKind};
