//! Modules, signals and the module builder.

use crate::bv::Bv;
use crate::error::{Result, RtlError};
use crate::expr::Expr;
use crate::stmt::{CaseArm, Process, ProcessKind, Stmt, StmtId, StmtKind};
use std::collections::HashMap;
use std::fmt;

/// A dense identifier for a signal within one [`Module`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(u32);

impl SignalId {
    /// The raw index into the module's signal table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a signal id from a raw index.
    ///
    /// Only meaningful against the module that produced the index.
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        SignalId(raw)
    }
}

/// Port direction / net class of a signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// Primary input port.
    Input,
    /// Primary output port.
    Output,
    /// Internal net declared `wire` (driven combinationally).
    Wire,
    /// Internal net declared `reg` (may be driven sequentially).
    Reg,
}

/// A named signal of a module.
#[derive(Clone, Debug, PartialEq)]
pub struct Signal {
    pub(crate) name: String,
    pub(crate) width: u32,
    pub(crate) kind: SignalKind,
    pub(crate) init: Bv,
}

impl Signal {
    /// The signal's source name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Port direction / net class.
    pub fn kind(&self) -> SignalKind {
        self.kind
    }

    /// Power-on / reset value (meaningful for state elements).
    pub fn init(&self) -> Bv {
        self.init
    }

    /// Whether this signal is a primary input.
    pub fn is_input(&self) -> bool {
        self.kind == SignalKind::Input
    }

    /// Whether this signal is a primary output.
    pub fn is_output(&self) -> bool {
        self.kind == SignalKind::Output
    }
}

/// A behavioral RTL module: signals plus combinational and sequential
/// processes over them.
///
/// Modules are immutable once built; construct them with [`ModuleBuilder`]
/// or by parsing Verilog-subset source with [`crate::parse_verilog`].
/// Structural and semantic validation (single drivers, no combinational
/// loops, no latches) happens in [`crate::elaborate`].
#[derive(Clone, Debug)]
pub struct Module {
    pub(crate) name: String,
    pub(crate) signals: Vec<Signal>,
    pub(crate) processes: Vec<Process>,
    pub(crate) by_name: HashMap<String, SignalId>,
    pub(crate) clock: Option<SignalId>,
    pub(crate) reset: Option<SignalId>,
    pub(crate) fsm_regs: Vec<SignalId>,
    pub(crate) stmt_count: u32,
}

impl Module {
    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All signals, indexable by [`SignalId::index`].
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// The signal record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this module.
    pub fn signal(&self, id: SignalId) -> &Signal {
        &self.signals[id.index()]
    }

    /// Width of signal `id`, in bits.
    pub fn signal_width(&self, id: SignalId) -> u32 {
        self.signals[id.index()].width
    }

    /// Looks up a signal by name.
    pub fn find(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// Looks up a signal by name, erroring with [`RtlError::UnknownSignal`].
    pub fn require(&self, name: &str) -> Result<SignalId> {
        self.find(name).ok_or_else(|| RtlError::UnknownSignal {
            name: name.to_string(),
        })
    }

    /// All behavioral processes in declaration order.
    pub fn processes(&self) -> &[Process] {
        &self.processes
    }

    /// Iterator over the ids of all signals.
    pub fn signal_ids(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.signals.len() as u32).map(SignalId)
    }

    /// Ids of all primary inputs (including clock and reset).
    pub fn inputs(&self) -> Vec<SignalId> {
        self.signal_ids()
            .filter(|s| self.signal(*s).is_input())
            .collect()
    }

    /// Ids of primary inputs excluding the designated clock and reset:
    /// the inputs that carry data and participate in mining.
    pub fn data_inputs(&self) -> Vec<SignalId> {
        self.signal_ids()
            .filter(|s| {
                self.signal(*s).is_input() && Some(*s) != self.clock && Some(*s) != self.reset
            })
            .collect()
    }

    /// Ids of all primary outputs.
    pub fn outputs(&self) -> Vec<SignalId> {
        self.signal_ids()
            .filter(|s| self.signal(*s).is_output())
            .collect()
    }

    /// The designated clock input, if any.
    pub fn clock(&self) -> Option<SignalId> {
        self.clock
    }

    /// The designated reset input, if any.
    pub fn reset(&self) -> Option<SignalId> {
        self.reset
    }

    /// Registers designated (by the builder or parser heuristic) as FSM
    /// state for FSM coverage.
    pub fn fsm_regs(&self) -> &[SignalId] {
        &self.fsm_regs
    }

    /// Total number of statement ids allocated in this module; statement
    /// ids are dense in `0..stmt_count`.
    pub fn stmt_count(&self) -> u32 {
        self.stmt_count
    }

    /// Signals assigned inside sequential processes: the state elements.
    pub fn state_signals(&self) -> Vec<SignalId> {
        let mut v: Vec<SignalId> = self
            .processes
            .iter()
            .filter(|p| p.kind == ProcessKind::Seq)
            .flat_map(|p| p.write_set())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Returns a mutated copy of this module in which every *read* of
    /// `signal` is replaced by the constant `value` — a stuck-at fault on
    /// the signal's fanout net.
    ///
    /// The paper's fault-injection experiment (Table 2) checks previously
    /// mined assertions against such mutants.
    pub fn with_stuck_signal(&self, signal: SignalId, value: Bv) -> Module {
        let value = value.resize(self.signal_width(signal));
        let subst = |s: SignalId| {
            if s == signal {
                Expr::Const(value)
            } else {
                Expr::Signal(s)
            }
        };
        fn map_stmt(st: &Stmt, subst: &impl Fn(SignalId) -> Expr) -> Stmt {
            let kind = match &st.kind {
                StmtKind::Assign { lhs, rhs } => StmtKind::Assign {
                    lhs: *lhs,
                    rhs: rhs.map_signals(subst),
                },
                StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                } => StmtKind::If {
                    cond: cond.map_signals(subst),
                    then_body: then_body.iter().map(|s| map_stmt(s, subst)).collect(),
                    else_body: else_body.iter().map(|s| map_stmt(s, subst)).collect(),
                },
                StmtKind::Case {
                    subject,
                    arms,
                    default,
                } => StmtKind::Case {
                    subject: subject.map_signals(subst),
                    arms: arms
                        .iter()
                        .map(|a| CaseArm {
                            labels: a.labels.clone(),
                            body: a.body.iter().map(|s| map_stmt(s, subst)).collect(),
                        })
                        .collect(),
                    default: default
                        .as_ref()
                        .map(|d| d.iter().map(|s| map_stmt(s, subst)).collect()),
                },
            };
            Stmt { id: st.id, kind }
        }
        let mut m = self.clone();
        m.processes = self
            .processes
            .iter()
            .map(|p| Process {
                kind: p.kind,
                body: p.body.iter().map(|s| map_stmt(s, &subst)).collect(),
            })
            .collect();
        m
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "module {} ({} signals, {} processes)",
            self.name,
            self.signals.len(),
            self.processes.len()
        )
    }
}

/// Incremental constructor for [`Module`]s.
///
/// # Examples
///
/// ```
/// use gm_rtl::{ModuleBuilder, Expr, Bv};
///
/// let mut b = ModuleBuilder::new("toy");
/// let clk = b.clock("clk");
/// let rst = b.reset("rst");
/// let a = b.input("a", 1);
/// let q = b.output_reg("q", 1, Bv::zero_bit());
/// b.always_seq(|p| {
///     p.if_else(
///         Expr::Signal(rst),
///         |t| t.assign(q, Expr::zero()),
///         |e| e.assign(q, Expr::Signal(a)),
///     );
/// });
/// let module = b.finish();
/// assert_eq!(module.outputs().len(), 1);
/// # let _ = clk;
/// ```
#[derive(Debug)]
pub struct ModuleBuilder {
    name: String,
    signals: Vec<Signal>,
    processes: Vec<Process>,
    by_name: HashMap<String, SignalId>,
    clock: Option<SignalId>,
    reset: Option<SignalId>,
    fsm_regs: Vec<SignalId>,
    next_stmt: u32,
    errors: Vec<RtlError>,
}

impl ModuleBuilder {
    /// Starts a new module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            name: name.into(),
            signals: Vec::new(),
            processes: Vec::new(),
            by_name: HashMap::new(),
            clock: None,
            reset: None,
            fsm_regs: Vec::new(),
            next_stmt: 0,
            errors: Vec::new(),
        }
    }

    fn add_signal(&mut self, name: &str, width: u32, kind: SignalKind, init: Bv) -> SignalId {
        if self.by_name.contains_key(name) {
            self.errors.push(RtlError::DuplicateSignal {
                name: name.to_string(),
            });
        }
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(Signal {
            name: name.to_string(),
            width,
            kind,
            init,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Declares a primary input.
    pub fn input(&mut self, name: &str, width: u32) -> SignalId {
        self.add_signal(name, width, SignalKind::Input, Bv::zeros(width))
    }

    /// Declares the clock input and designates it as the module clock.
    pub fn clock(&mut self, name: &str) -> SignalId {
        let id = self.input(name, 1);
        self.clock = Some(id);
        id
    }

    /// Declares the reset input and designates it as the module reset.
    pub fn reset(&mut self, name: &str) -> SignalId {
        let id = self.input(name, 1);
        self.reset = Some(id);
        id
    }

    /// Declares a combinationally driven primary output.
    pub fn output(&mut self, name: &str, width: u32) -> SignalId {
        self.add_signal(name, width, SignalKind::Output, Bv::zeros(width))
    }

    /// Declares a registered primary output (`output reg`) with the given
    /// reset value.
    pub fn output_reg(&mut self, name: &str, width: u32, init: Bv) -> SignalId {
        self.add_signal(name, width, SignalKind::Output, init.resize(width))
    }

    /// Declares an internal wire.
    pub fn wire(&mut self, name: &str, width: u32) -> SignalId {
        self.add_signal(name, width, SignalKind::Wire, Bv::zeros(width))
    }

    /// Declares an internal register with the given reset value.
    pub fn reg(&mut self, name: &str, width: u32, init: Bv) -> SignalId {
        self.add_signal(name, width, SignalKind::Reg, init.resize(width))
    }

    /// Marks a register as FSM state for FSM coverage reporting.
    pub fn mark_fsm(&mut self, reg: SignalId) {
        if !self.fsm_regs.contains(&reg) {
            self.fsm_regs.push(reg);
        }
    }

    /// Overrides the power-on / reset value of a declared signal.
    ///
    /// The parser uses this to propagate values assigned under the reset
    /// branch of a sequential process into the model-checking initial state.
    pub fn set_init(&mut self, sig: SignalId, init: Bv) {
        let s = &mut self.signals[sig.index()];
        s.init = init.resize(s.width);
    }

    /// Designates an already-declared input as the module clock.
    pub fn designate_clock(&mut self, sig: SignalId) {
        self.clock = Some(sig);
    }

    /// Designates an already-declared input as the module reset.
    pub fn designate_reset(&mut self, sig: SignalId) {
        self.reset = Some(sig);
    }

    /// Adds a continuous assignment `assign lhs = rhs;`.
    pub fn assign(&mut self, lhs: SignalId, rhs: Expr) {
        let id = self.alloc_stmt();
        self.processes.push(Process {
            kind: ProcessKind::Comb,
            body: vec![Stmt {
                id,
                kind: StmtKind::Assign { lhs, rhs },
            }],
        });
    }

    /// Adds a combinational process (`always @(*)`).
    pub fn always_comb(&mut self, f: impl FnOnce(&mut StmtBuilder<'_>)) {
        let body = self.build_body(f);
        self.processes.push(Process {
            kind: ProcessKind::Comb,
            body,
        });
    }

    /// Adds a sequential process (`always @(posedge clk)`).
    pub fn always_seq(&mut self, f: impl FnOnce(&mut StmtBuilder<'_>)) {
        let body = self.build_body(f);
        self.processes.push(Process {
            kind: ProcessKind::Seq,
            body,
        });
    }

    fn build_body(&mut self, f: impl FnOnce(&mut StmtBuilder<'_>)) -> Vec<Stmt> {
        let mut sb = StmtBuilder {
            next_stmt: &mut self.next_stmt,
            stmts: Vec::new(),
        };
        f(&mut sb);
        sb.stmts
    }

    fn alloc_stmt(&mut self) -> StmtId {
        let id = StmtId(self.next_stmt);
        self.next_stmt += 1;
        id
    }

    /// Finishes construction, returning the module.
    ///
    /// # Errors
    ///
    /// Returns the first accumulated declaration error (duplicate signals).
    /// Semantic validation happens later, in [`crate::elaborate`].
    pub fn build(self) -> Result<Module> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        Ok(Module {
            name: self.name,
            signals: self.signals,
            processes: self.processes,
            by_name: self.by_name,
            clock: self.clock,
            reset: self.reset,
            fsm_regs: self.fsm_regs,
            stmt_count: self.next_stmt,
        })
    }

    /// Finishes construction, panicking on declaration errors.
    ///
    /// # Panics
    ///
    /// Panics if a signal was declared twice. Intended for statically
    /// known designs (benchmarks, tests); prefer [`ModuleBuilder::build`]
    /// for user-provided input.
    pub fn finish(self) -> Module {
        self.build().expect("module construction failed")
    }
}

/// Builder for statement lists inside a process body.
///
/// Obtained from [`ModuleBuilder::always_comb`]/[`ModuleBuilder::always_seq`]
/// or from the nested-closure methods on itself.
#[derive(Debug)]
pub struct StmtBuilder<'a> {
    next_stmt: &'a mut u32,
    stmts: Vec<Stmt>,
}

impl StmtBuilder<'_> {
    fn alloc(&mut self) -> StmtId {
        let id = StmtId(*self.next_stmt);
        *self.next_stmt += 1;
        id
    }

    fn child(&mut self, f: impl FnOnce(&mut StmtBuilder<'_>)) -> Vec<Stmt> {
        let mut sb = StmtBuilder {
            next_stmt: self.next_stmt,
            stmts: Vec::new(),
        };
        f(&mut sb);
        sb.stmts
    }

    /// Appends an assignment `lhs = rhs`.
    pub fn assign(&mut self, lhs: SignalId, rhs: Expr) {
        let id = self.alloc();
        self.stmts.push(Stmt {
            id,
            kind: StmtKind::Assign { lhs, rhs },
        });
    }

    /// Appends `if (cond) { then } else { else }`.
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_f: impl FnOnce(&mut StmtBuilder<'_>),
        else_f: impl FnOnce(&mut StmtBuilder<'_>),
    ) {
        let id = self.alloc();
        let then_body = self.child(then_f);
        let else_body = self.child(else_f);
        self.stmts.push(Stmt {
            id,
            kind: StmtKind::If {
                cond,
                then_body,
                else_body,
            },
        });
    }

    /// Appends `if (cond) { then }` with an empty else branch.
    pub fn if_(&mut self, cond: Expr, then_f: impl FnOnce(&mut StmtBuilder<'_>)) {
        self.if_else(cond, then_f, |_| {});
    }

    /// Appends a `case (subject)` statement built through a [`CaseBuilder`].
    pub fn case(&mut self, subject: Expr, f: impl FnOnce(&mut CaseBuilder<'_, '_>)) {
        let id = self.alloc();
        let mut cb = CaseBuilder {
            sb: self,
            arms: Vec::new(),
            default: None,
        };
        f(&mut cb);
        let (arms, default) = (cb.arms, cb.default);
        self.stmts.push(Stmt {
            id,
            kind: StmtKind::Case {
                subject,
                arms,
                default,
            },
        });
    }
}

/// Builder for the arms of a `case` statement.
#[derive(Debug)]
pub struct CaseBuilder<'b, 'a> {
    sb: &'b mut StmtBuilder<'a>,
    arms: Vec<CaseArm>,
    default: Option<Vec<Stmt>>,
}

impl CaseBuilder<'_, '_> {
    /// Adds an arm selected by any of `labels`.
    pub fn arm(&mut self, labels: &[Bv], f: impl FnOnce(&mut StmtBuilder<'_>)) {
        let body = self.sb.child(f);
        self.arms.push(CaseArm {
            labels: labels.to_vec(),
            body,
        });
    }

    /// Sets the `default:` body.
    pub fn default(&mut self, f: impl FnOnce(&mut StmtBuilder<'_>)) {
        let body = self.sb.child(f);
        self.default = Some(body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_declares_and_finds_signals() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 4);
        let y = b.output("y", 4);
        b.assign(y, Expr::Signal(a).not());
        let m = b.finish();
        assert_eq!(m.find("a"), Some(a));
        assert_eq!(m.find("y"), Some(y));
        assert_eq!(m.find("nope"), None);
        assert_eq!(m.signal(a).width(), 4);
        assert_eq!(m.inputs(), vec![a]);
        assert_eq!(m.outputs(), vec![y]);
        assert_eq!(m.stmt_count(), 1);
    }

    #[test]
    fn duplicate_signal_is_an_error() {
        let mut b = ModuleBuilder::new("m");
        b.input("a", 1);
        b.input("a", 2);
        assert_eq!(
            b.build().unwrap_err(),
            RtlError::DuplicateSignal { name: "a".into() }
        );
    }

    #[test]
    fn data_inputs_exclude_clock_and_reset() {
        let mut b = ModuleBuilder::new("m");
        let _clk = b.clock("clk");
        let _rst = b.reset("rst");
        let d = b.input("d", 1);
        let q = b.output_reg("q", 1, Bv::zero_bit());
        b.always_seq(|p| p.assign(q, Expr::Signal(d)));
        let m = b.finish();
        assert_eq!(m.data_inputs(), vec![d]);
        assert_eq!(m.state_signals(), vec![q]);
    }

    #[test]
    fn nested_statement_ids_are_dense_and_unique() {
        let mut b = ModuleBuilder::new("m");
        let c = b.input("c", 1);
        let s = b.input("s", 2);
        let q = b.reg("q", 1, Bv::zero_bit());
        b.always_seq(|p| {
            p.if_else(
                Expr::Signal(c),
                |t| {
                    t.case(Expr::Signal(s), |cb| {
                        cb.arm(&[Bv::new(0, 2)], |a| a.assign(q, Expr::zero()));
                        cb.arm(&[Bv::new(1, 2), Bv::new(2, 2)], |a| {
                            a.assign(q, Expr::one())
                        });
                        cb.default(|d| d.assign(q, Expr::Signal(c)));
                    });
                },
                |e| e.assign(q, Expr::zero()),
            );
        });
        let m = b.finish();
        let mut seen = Vec::new();
        for p in m.processes() {
            p.for_each_stmt(&mut |s| seen.push(s.id.index()));
        }
        seen.sort_unstable();
        let expect: Vec<usize> = (0..m.stmt_count() as usize).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn stuck_signal_mutation_rewrites_reads() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 1);
        let y = b.output("y", 1);
        b.assign(y, Expr::Signal(a).not());
        let m = b.finish();
        let mutant = m.with_stuck_signal(a, Bv::one_bit());
        match &mutant.processes()[0].body[0].kind {
            StmtKind::Assign { rhs, .. } => {
                assert_eq!(*rhs, Expr::Const(Bv::one_bit()).not());
            }
            other => panic!("unexpected statement {other:?}"),
        }
    }
}
