//! Parser for a synthesizable Verilog subset.
//!
//! The subset covers what the paper's benchmark designs need:
//!
//! * `module`/`endmodule` with ANSI (`module m(input a, output reg y);`)
//!   or non-ANSI (`module m(a, y); input a; output y;`) port styles;
//! * `input`/`output`/`wire`/`reg` declarations with `[msb:lsb]` ranges
//!   and optional initializers;
//! * `localparam`/`parameter` constants (usable in ranges and labels);
//! * continuous `assign`;
//! * `always @(posedge clk)` (sequential, non-blocking `<=`) and
//!   `always @(*)` / `always @(a or b)` (combinational, blocking `=`);
//! * `begin`/`end`, `if`/`else`, `case`/`endcase` with `default`;
//! * the expression operators of [`crate::BinaryOp`]/[`crate::UnaryOp`],
//!   ternary `?:`, concatenation `{a, b}`, constant bit/part selects.
//!
//! Clock and reset inputs are recognized from sensitivity lists and
//! naming (`clk`/`clock`, `rst`/`reset`); register reset values are
//! recovered from `if (rst) ...` branches so that model checking starts
//! from the design's actual reset state.

mod lexer;

pub use lexer::{lex, Punct, Token, TokenKind};

use crate::bv::Bv;
use crate::error::{Result, RtlError};
use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::module::{Module, ModuleBuilder, SignalId, StmtBuilder};
use std::collections::HashMap;

/// Parses Verilog-subset source containing exactly one module.
///
/// # Errors
///
/// Returns [`RtlError::Parse`] on syntax errors and other [`RtlError`]
/// variants on resolution problems (unknown names, width violations).
///
/// # Examples
///
/// ```
/// let src = "
///     module inv(input a, output y);
///         assign y = ~a;
///     endmodule";
/// let m = gm_rtl::parse_verilog(src)?;
/// assert_eq!(m.name(), "inv");
/// # Ok::<(), gm_rtl::RtlError>(())
/// ```
pub fn parse_verilog(src: &str) -> Result<Module> {
    let mut mods = parse_verilog_all(src)?;
    if mods.len() != 1 {
        return Err(RtlError::Parse {
            line: 1,
            col: 1,
            msg: format!("expected exactly one module, found {}", mods.len()),
        });
    }
    Ok(mods.pop().unwrap())
}

/// Parses Verilog-subset source containing any number of modules.
///
/// # Errors
///
/// See [`parse_verilog`].
pub fn parse_verilog_all(src: &str) -> Result<Vec<Module>> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    while !p.at_eof() {
        let ast = p.parse_module()?;
        out.push(resolve(ast)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser-local AST
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum PExpr {
    Num {
        width: Option<u32>,
        value: u64,
    },
    Ident(String),
    Index {
        base: String,
        idx: Box<PExpr>,
    },
    Slice {
        base: String,
        hi: Box<PExpr>,
        lo: Box<PExpr>,
    },
    Unary(UnaryOp, Box<PExpr>),
    Binary(BinaryOp, Box<PExpr>, Box<PExpr>),
    Ternary(Box<PExpr>, Box<PExpr>, Box<PExpr>),
    Concat(Vec<PExpr>),
}

#[derive(Clone, Debug)]
enum PStmt {
    Block(Vec<PStmt>),
    If {
        cond: PExpr,
        then_s: Box<PStmt>,
        else_s: Option<Box<PStmt>>,
    },
    Case {
        subject: PExpr,
        arms: Vec<(Vec<PExpr>, PStmt)>,
        default: Option<Box<PStmt>>,
    },
    Assign {
        lhs: String,
        rhs: PExpr,
    },
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum PDir {
    Input,
    Output,
}

#[derive(Clone, Debug)]
struct PDecl {
    dir: Option<PDir>,
    is_reg: bool,
    range: Option<(PExpr, PExpr)>,
    names: Vec<(String, Option<PExpr>)>,
}

#[derive(Clone, Debug)]
enum PItem {
    Decl(PDecl),
    Param(String, PExpr),
    Assign(String, PExpr),
    Always {
        seq: bool,
        posedges: Vec<String>,
        body: PStmt,
    },
}

#[derive(Clone, Debug)]
struct PModule {
    name: String,
    port_names: Vec<String>,
    items: Vec<PItem>,
}

// ---------------------------------------------------------------------------
// Recursive-descent parser
// ---------------------------------------------------------------------------

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if !matches!(t.kind, TokenKind::Eof) {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, msg: impl Into<String>) -> Result<T> {
        let t = self.peek();
        Err(RtlError::Parse {
            line: t.line,
            col: t.col,
            msg: msg.into(),
        })
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek().kind == TokenKind::Punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.error(format!("expected `{p:?}`, found {:?}", self.peek().kind))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.error(format!("expected `{kw}`, found {:?}", self.peek().kind))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => self.error(format!("expected identifier, found {other:?}")),
        }
    }

    fn parse_module(&mut self) -> Result<PModule> {
        self.expect_keyword("module")?;
        let name = self.expect_ident()?;
        let mut port_names = Vec::new();
        let mut items: Vec<PItem> = Vec::new();
        if self.eat_punct(Punct::LParen) && !self.eat_punct(Punct::RParen) {
            loop {
                if self.at_keyword("input") || self.at_keyword("output") {
                    // ANSI port declaration.
                    let dir = if self.eat_keyword("input") {
                        PDir::Input
                    } else {
                        self.expect_keyword("output")?;
                        PDir::Output
                    };
                    let is_reg = self.eat_keyword("reg");
                    let _ = self.eat_keyword("wire");
                    let range = self.parse_opt_range()?;
                    let pname = self.expect_ident()?;
                    port_names.push(pname.clone());
                    items.push(PItem::Decl(PDecl {
                        dir: Some(dir),
                        is_reg,
                        range,
                        names: vec![(pname, None)],
                    }));
                } else {
                    let pname = self.expect_ident()?;
                    port_names.push(pname);
                }
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RParen)?;
        }
        self.expect_punct(Punct::Semi)?;
        while !self.eat_keyword("endmodule") {
            if self.at_eof() {
                return self.error("unexpected end of input inside module");
            }
            items.push(self.parse_item()?);
        }
        Ok(PModule {
            name,
            port_names,
            items,
        })
    }

    fn parse_opt_range(&mut self) -> Result<Option<(PExpr, PExpr)>> {
        if self.eat_punct(Punct::LBracket) {
            let hi = self.parse_expr()?;
            self.expect_punct(Punct::Colon)?;
            let lo = self.parse_expr()?;
            self.expect_punct(Punct::RBracket)?;
            Ok(Some((hi, lo)))
        } else {
            Ok(None)
        }
    }

    fn parse_item(&mut self) -> Result<PItem> {
        if self.at_keyword("input")
            || self.at_keyword("output")
            || self.at_keyword("wire")
            || self.at_keyword("reg")
        {
            return self.parse_decl().map(PItem::Decl);
        }
        if self.at_keyword("localparam") || self.at_keyword("parameter") {
            self.bump();
            // Optional range on parameters is accepted and ignored.
            let _ = self.parse_opt_range()?;
            let name = self.expect_ident()?;
            self.expect_punct(Punct::Eq)?;
            let value = self.parse_expr()?;
            self.expect_punct(Punct::Semi)?;
            return Ok(PItem::Param(name, value));
        }
        if self.eat_keyword("assign") {
            let lhs = self.expect_ident()?;
            self.expect_punct(Punct::Eq)?;
            let rhs = self.parse_expr()?;
            self.expect_punct(Punct::Semi)?;
            return Ok(PItem::Assign(lhs, rhs));
        }
        if self.eat_keyword("always") {
            return self.parse_always();
        }
        self.error(format!("unexpected token {:?}", self.peek().kind))
    }

    fn parse_decl(&mut self) -> Result<PDecl> {
        let dir = if self.eat_keyword("input") {
            Some(PDir::Input)
        } else if self.eat_keyword("output") {
            Some(PDir::Output)
        } else {
            None
        };
        let mut is_reg = self.eat_keyword("reg");
        if !is_reg && dir.is_none() {
            // Plain `wire` declaration.
            self.expect_keyword("wire")?;
        } else if dir.is_some() && !is_reg {
            let _ = self.eat_keyword("wire");
            is_reg = self.eat_keyword("reg") || is_reg;
        }
        let range = self.parse_opt_range()?;
        let mut names = Vec::new();
        loop {
            let n = self.expect_ident()?;
            let init = if self.eat_punct(Punct::Eq) {
                Some(self.parse_expr()?)
            } else {
                None
            };
            names.push((n, init));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(PDecl {
            dir,
            is_reg,
            range,
            names,
        })
    }

    fn parse_always(&mut self) -> Result<PItem> {
        self.expect_punct(Punct::At)?;
        let mut posedges = Vec::new();
        let mut seq = false;
        if self.eat_punct(Punct::Star) {
            // `always @*`
        } else {
            self.expect_punct(Punct::LParen)?;
            if self.eat_punct(Punct::Star) {
                self.expect_punct(Punct::RParen)?;
            } else {
                loop {
                    if self.eat_keyword("posedge") || self.eat_keyword("negedge") {
                        seq = true;
                        posedges.push(self.expect_ident()?);
                    } else {
                        // Level-sensitive name: combinational process.
                        let _ = self.expect_ident()?;
                    }
                    if !(self.eat_keyword("or") || self.eat_punct(Punct::Comma)) {
                        break;
                    }
                }
                self.expect_punct(Punct::RParen)?;
            }
        }
        let body = self.parse_stmt()?;
        Ok(PItem::Always {
            seq,
            posedges,
            body,
        })
    }

    fn parse_stmt(&mut self) -> Result<PStmt> {
        if self.eat_keyword("begin") {
            let mut body = Vec::new();
            while !self.eat_keyword("end") {
                if self.at_eof() {
                    return self.error("unexpected end of input inside begin/end");
                }
                body.push(self.parse_stmt()?);
            }
            return Ok(PStmt::Block(body));
        }
        if self.eat_keyword("if") {
            self.expect_punct(Punct::LParen)?;
            let cond = self.parse_expr()?;
            self.expect_punct(Punct::RParen)?;
            let then_s = Box::new(self.parse_stmt()?);
            let else_s = if self.eat_keyword("else") {
                Some(Box::new(self.parse_stmt()?))
            } else {
                None
            };
            return Ok(PStmt::If {
                cond,
                then_s,
                else_s,
            });
        }
        if self.eat_keyword("case") {
            self.expect_punct(Punct::LParen)?;
            let subject = self.parse_expr()?;
            self.expect_punct(Punct::RParen)?;
            let mut arms = Vec::new();
            let mut default = None;
            while !self.eat_keyword("endcase") {
                if self.at_eof() {
                    return self.error("unexpected end of input inside case");
                }
                if self.eat_keyword("default") {
                    let _ = self.eat_punct(Punct::Colon);
                    default = Some(Box::new(self.parse_stmt()?));
                } else {
                    let mut labels = vec![self.parse_expr()?];
                    while self.eat_punct(Punct::Comma) {
                        labels.push(self.parse_expr()?);
                    }
                    self.expect_punct(Punct::Colon)?;
                    let body = self.parse_stmt()?;
                    arms.push((labels, body));
                }
            }
            return Ok(PStmt::Case {
                subject,
                arms,
                default,
            });
        }
        // Assignment: `lhs = rhs;` or `lhs <= rhs;`.
        let lhs = self.expect_ident()?;
        if !(self.eat_punct(Punct::Eq) || self.eat_punct(Punct::Le)) {
            return self.error("expected `=` or `<=` in assignment");
        }
        let rhs = self.parse_expr()?;
        self.expect_punct(Punct::Semi)?;
        Ok(PStmt::Assign { lhs, rhs })
    }

    // Expression parsing, lowest precedence first.
    fn parse_expr(&mut self) -> Result<PExpr> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<PExpr> {
        let cond = self.parse_logic_or()?;
        if self.eat_punct(Punct::Question) {
            let t = self.parse_ternary()?;
            self.expect_punct(Punct::Colon)?;
            let e = self.parse_ternary()?;
            Ok(PExpr::Ternary(Box::new(cond), Box::new(t), Box::new(e)))
        } else {
            Ok(cond)
        }
    }

    fn parse_binary_level(
        &mut self,
        ops: &[(Punct, BinaryOp)],
        next: fn(&mut Self) -> Result<PExpr>,
    ) -> Result<PExpr> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (p, op) in ops {
                if self.eat_punct(*p) {
                    let rhs = next(self)?;
                    lhs = PExpr::Binary(*op, Box::new(lhs), Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn parse_logic_or(&mut self) -> Result<PExpr> {
        self.parse_binary_level(
            &[(Punct::PipePipe, BinaryOp::LogicOr)],
            Self::parse_logic_and,
        )
    }

    fn parse_logic_and(&mut self) -> Result<PExpr> {
        self.parse_binary_level(&[(Punct::AmpAmp, BinaryOp::LogicAnd)], Self::parse_bit_or)
    }

    fn parse_bit_or(&mut self) -> Result<PExpr> {
        self.parse_binary_level(&[(Punct::Pipe, BinaryOp::Or)], Self::parse_bit_xor)
    }

    fn parse_bit_xor(&mut self) -> Result<PExpr> {
        self.parse_binary_level(&[(Punct::Caret, BinaryOp::Xor)], Self::parse_bit_and)
    }

    fn parse_bit_and(&mut self) -> Result<PExpr> {
        self.parse_binary_level(&[(Punct::Amp, BinaryOp::And)], Self::parse_equality)
    }

    fn parse_equality(&mut self) -> Result<PExpr> {
        self.parse_binary_level(
            &[(Punct::EqEq, BinaryOp::Eq), (Punct::BangEq, BinaryOp::Ne)],
            Self::parse_relational,
        )
    }

    fn parse_relational(&mut self) -> Result<PExpr> {
        self.parse_binary_level(
            &[
                (Punct::Le, BinaryOp::Le),
                (Punct::Ge, BinaryOp::Ge),
                (Punct::Lt, BinaryOp::Lt),
                (Punct::Gt, BinaryOp::Gt),
            ],
            Self::parse_shift,
        )
    }

    fn parse_shift(&mut self) -> Result<PExpr> {
        self.parse_binary_level(
            &[(Punct::Shl, BinaryOp::Shl), (Punct::Shr, BinaryOp::Shr)],
            Self::parse_additive,
        )
    }

    fn parse_additive(&mut self) -> Result<PExpr> {
        self.parse_binary_level(
            &[(Punct::Plus, BinaryOp::Add), (Punct::Minus, BinaryOp::Sub)],
            Self::parse_multiplicative,
        )
    }

    fn parse_multiplicative(&mut self) -> Result<PExpr> {
        self.parse_binary_level(&[(Punct::Star, BinaryOp::Mul)], Self::parse_unary)
    }

    fn parse_unary(&mut self) -> Result<PExpr> {
        let op = if self.eat_punct(Punct::Tilde) {
            Some(UnaryOp::Not)
        } else if self.eat_punct(Punct::Bang) {
            Some(UnaryOp::LogicNot)
        } else if self.eat_punct(Punct::Minus) {
            Some(UnaryOp::Neg)
        } else if self.eat_punct(Punct::Amp) {
            Some(UnaryOp::RedAnd)
        } else if self.eat_punct(Punct::Pipe) {
            Some(UnaryOp::RedOr)
        } else if self.eat_punct(Punct::Caret) {
            Some(UnaryOp::RedXor)
        } else {
            None
        };
        match op {
            Some(op) => Ok(PExpr::Unary(op, Box::new(self.parse_unary()?))),
            None => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<PExpr> {
        if self.eat_punct(Punct::LParen) {
            let e = self.parse_expr()?;
            self.expect_punct(Punct::RParen)?;
            return Ok(e);
        }
        if self.eat_punct(Punct::LBrace) {
            let mut parts = vec![self.parse_expr()?];
            while self.eat_punct(Punct::Comma) {
                parts.push(self.parse_expr()?);
            }
            self.expect_punct(Punct::RBrace)?;
            return Ok(PExpr::Concat(parts));
        }
        match self.peek().kind.clone() {
            TokenKind::Number { width, value } => {
                self.bump();
                Ok(PExpr::Num { width, value })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat_punct(Punct::LBracket) {
                    let first = self.parse_expr()?;
                    if self.eat_punct(Punct::Colon) {
                        let lo = self.parse_expr()?;
                        self.expect_punct(Punct::RBracket)?;
                        Ok(PExpr::Slice {
                            base: name,
                            hi: Box::new(first),
                            lo: Box::new(lo),
                        })
                    } else {
                        self.expect_punct(Punct::RBracket)?;
                        Ok(PExpr::Index {
                            base: name,
                            idx: Box::new(first),
                        })
                    }
                } else {
                    Ok(PExpr::Ident(name))
                }
            }
            other => self.error(format!("expected expression, found {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Resolution: AST -> Module
// ---------------------------------------------------------------------------

const DEFAULT_LITERAL_WIDTH: u32 = 32;

struct ResolveCtx {
    params: HashMap<String, Bv>,
    signals: HashMap<String, SignalId>,
    widths: HashMap<String, u32>,
}

fn resolve_err(msg: String) -> RtlError {
    RtlError::Parse {
        line: 0,
        col: 0,
        msg,
    }
}

fn const_eval(e: &PExpr, params: &HashMap<String, Bv>) -> Result<Bv> {
    match e {
        PExpr::Num { width, value } => Ok(Bv::new(*value, width.unwrap_or(DEFAULT_LITERAL_WIDTH))),
        PExpr::Ident(n) => params
            .get(n)
            .copied()
            .ok_or_else(|| resolve_err(format!("`{n}` is not a constant parameter"))),
        PExpr::Unary(UnaryOp::Not, a) => Ok(const_eval(a, params)?.not()),
        PExpr::Unary(UnaryOp::Neg, a) => Ok(const_eval(a, params)?.neg()),
        PExpr::Binary(op, a, b) => {
            let x = const_eval(a, params)?;
            let y = const_eval(b, params)?;
            Ok(match op {
                BinaryOp::Add => x.add(y),
                BinaryOp::Sub => x.sub(y),
                BinaryOp::Mul => x.mul(y),
                BinaryOp::Shl => x.shl(y),
                BinaryOp::Shr => x.shr(y),
                BinaryOp::And => x.and(y),
                BinaryOp::Or => x.or(y),
                BinaryOp::Xor => x.xor(y),
                _ => {
                    return Err(resolve_err(format!(
                        "operator `{op}` not supported in constant expressions"
                    )))
                }
            })
        }
        _ => Err(resolve_err(
            "unsupported constant expression form".to_string(),
        )),
    }
}

fn resolve_expr(e: &PExpr, ctx: &ResolveCtx) -> Result<Expr> {
    match e {
        PExpr::Num { width, value } => Ok(Expr::Const(Bv::new(
            *value,
            width.unwrap_or(DEFAULT_LITERAL_WIDTH),
        ))),
        PExpr::Ident(n) => {
            if let Some(p) = ctx.params.get(n) {
                return Ok(Expr::Const(*p));
            }
            let id = ctx
                .signals
                .get(n)
                .ok_or_else(|| RtlError::UnknownSignal { name: n.clone() })?;
            Ok(Expr::Signal(*id))
        }
        PExpr::Index { base, idx } => {
            let id = ctx
                .signals
                .get(base)
                .ok_or_else(|| RtlError::UnknownSignal { name: base.clone() })?;
            let bit = const_eval(idx, &ctx.params)?.bits() as u32;
            Ok(Expr::Signal(*id).index(bit))
        }
        PExpr::Slice { base, hi, lo } => {
            let id = ctx
                .signals
                .get(base)
                .ok_or_else(|| RtlError::UnknownSignal { name: base.clone() })?;
            let h = const_eval(hi, &ctx.params)?.bits() as u32;
            let l = const_eval(lo, &ctx.params)?.bits() as u32;
            Ok(Expr::Signal(*id).slice(h, l))
        }
        PExpr::Unary(op, a) => Ok(Expr::unary(*op, resolve_expr(a, ctx)?)),
        PExpr::Binary(op, a, b) => Ok(Expr::binary(
            *op,
            resolve_expr(a, ctx)?,
            resolve_expr(b, ctx)?,
        )),
        PExpr::Ternary(c, t, e2) => {
            Ok(resolve_expr(c, ctx)?.mux(resolve_expr(t, ctx)?, resolve_expr(e2, ctx)?))
        }
        PExpr::Concat(parts) => {
            let resolved: Result<Vec<Expr>> = parts.iter().map(|p| resolve_expr(p, ctx)).collect();
            Ok(Expr::Concat(resolved?))
        }
    }
}

fn lower_stmts(sb: &mut StmtBuilder<'_>, stmts: &[PStmt], ctx: &ResolveCtx) -> Result<()> {
    for s in stmts {
        lower_stmt(sb, s, ctx)?;
    }
    Ok(())
}

fn lower_stmt(sb: &mut StmtBuilder<'_>, stmt: &PStmt, ctx: &ResolveCtx) -> Result<()> {
    match stmt {
        PStmt::Block(body) => lower_stmts(sb, body, ctx),
        PStmt::Assign { lhs, rhs } => {
            let id = ctx
                .signals
                .get(lhs)
                .ok_or_else(|| RtlError::UnknownSignal { name: lhs.clone() })?;
            let rhs = resolve_expr(rhs, ctx)?;
            sb.assign(*id, rhs);
            Ok(())
        }
        PStmt::If {
            cond,
            then_s,
            else_s,
        } => {
            let c = resolve_expr(cond, ctx)?;
            let result = std::cell::RefCell::new(Ok(()));
            sb.if_else(
                c,
                |t| {
                    let r = lower_stmt(t, then_s, ctx);
                    if result.borrow().is_ok() {
                        *result.borrow_mut() = r;
                    }
                },
                |e| {
                    if let Some(es) = else_s {
                        let r = lower_stmt(e, es, ctx);
                        if result.borrow().is_ok() {
                            *result.borrow_mut() = r;
                        }
                    }
                },
            );
            result.into_inner()
        }
        PStmt::Case {
            subject,
            arms,
            default,
        } => {
            let subj = resolve_expr(subject, ctx)?;
            let subj_width = {
                let widths = &ctx.widths;
                let signals = &ctx.signals;
                let lookup = |id: SignalId| {
                    // Find width by reverse lookup; widths are kept by name.
                    widths
                        .iter()
                        .find(|(n, _)| signals.get(*n) == Some(&id))
                        .map(|(_, w)| *w)
                        .unwrap_or(DEFAULT_LITERAL_WIDTH)
                };
                subj.width_in(&lookup)
            };
            let mut result = Ok(());
            sb.case(subj, |cb| {
                for (labels, body) in arms {
                    let mut lbls = Vec::new();
                    for l in labels {
                        match const_eval(l, &ctx.params) {
                            Ok(v) => {
                                if subj_width < 64 && v.bits() >= (1u64 << subj_width) {
                                    result = Err(RtlError::Width {
                                        msg: format!(
                                            "case label {} does not fit subject width {}",
                                            v.bits(),
                                            subj_width
                                        ),
                                    });
                                }
                                lbls.push(v.resize(subj_width));
                            }
                            Err(e) => result = Err(e),
                        }
                    }
                    cb.arm(&lbls, |a| {
                        if result.is_ok() {
                            result = lower_stmt(a, body, ctx);
                        }
                    });
                }
                if let Some(d) = default {
                    cb.default(|db| {
                        if result.is_ok() {
                            result = lower_stmt(db, d, ctx);
                        }
                    });
                }
            });
            result
        }
    }
}

/// Collects `reg <= constant` assignments in the reset branch so register
/// init values match the design's reset state.
fn collect_reset_inits(
    stmt: &PStmt,
    reset_name: &str,
    params: &HashMap<String, Bv>,
    out: &mut Vec<(String, Bv)>,
) {
    match stmt {
        PStmt::Block(body) => {
            for s in body {
                collect_reset_inits(s, reset_name, params, out);
            }
        }
        PStmt::If { cond, then_s, .. } => {
            if matches!(cond, PExpr::Ident(n) if n == reset_name) {
                collect_const_assigns(then_s, params, out);
            }
        }
        _ => {}
    }
}

fn collect_const_assigns(stmt: &PStmt, params: &HashMap<String, Bv>, out: &mut Vec<(String, Bv)>) {
    match stmt {
        PStmt::Block(body) => {
            for s in body {
                collect_const_assigns(s, params, out);
            }
        }
        PStmt::Assign { lhs, rhs } => {
            if let Ok(v) = const_eval(rhs, params) {
                out.push((lhs.clone(), v));
            }
        }
        _ => {}
    }
}

fn is_reset_name(name: &str) -> bool {
    matches!(name, "rst" | "reset" | "rst_n" | "resetn" | "arst")
}

fn is_clock_name(name: &str) -> bool {
    matches!(name, "clk" | "clock" | "ck")
}

fn resolve(ast: PModule) -> Result<Module> {
    // Pass 1: parameters (in order).
    let mut params: HashMap<String, Bv> = HashMap::new();
    for item in &ast.items {
        if let PItem::Param(name, value) = item {
            let v = const_eval(value, &params)?;
            params.insert(name.clone(), v);
        }
    }

    // Pass 2: merge declarations by name (handles `output y; reg y;`).
    #[derive(Default, Clone)]
    struct Merged {
        dir: Option<PDir>,
        is_reg: bool,
        width: Option<u32>,
        init: Option<Bv>,
        order: usize,
    }
    let mut merged: HashMap<String, Merged> = HashMap::new();
    let mut order = 0usize;
    for item in &ast.items {
        if let PItem::Decl(d) = item {
            let width = match &d.range {
                Some((hi, lo)) => {
                    let h = const_eval(hi, &params)?.bits();
                    let l = const_eval(lo, &params)?.bits();
                    if l != 0 || h >= 64 {
                        return Err(RtlError::Width {
                            msg: format!("unsupported range [{h}:{l}] (need [N:0], N<64)"),
                        });
                    }
                    Some((h - l + 1) as u32)
                }
                None => None,
            };
            for (name, init) in &d.names {
                let e = merged.entry(name.clone()).or_insert_with(|| {
                    order += 1;
                    Merged {
                        order,
                        ..Merged::default()
                    }
                });
                if let Some(dir) = d.dir {
                    if e.dir.is_some() && e.dir != Some(dir) {
                        return Err(RtlError::DuplicateSignal { name: name.clone() });
                    }
                    e.dir = Some(dir);
                }
                e.is_reg |= d.is_reg;
                if let Some(w) = width {
                    if let Some(prev) = e.width {
                        if prev != w {
                            return Err(RtlError::Width {
                                msg: format!("`{name}` declared with widths {prev} and {w}"),
                            });
                        }
                    }
                    e.width = Some(w);
                }
                if let Some(i) = init {
                    e.init = Some(const_eval(i, &params)?);
                }
            }
        }
    }

    // Check non-ANSI port names have directions.
    for p in &ast.port_names {
        match merged.get(p) {
            Some(m) if m.dir.is_some() => {}
            _ => {
                return Err(resolve_err(format!(
                    "port `{p}` has no direction declaration"
                )));
            }
        }
    }

    // Pass 3: create signals in declaration order.
    let mut builder = ModuleBuilder::new(ast.name.clone());
    let mut names: Vec<(&String, &Merged)> = merged.iter().collect();
    names.sort_by_key(|(_, m)| m.order);
    let mut ctx = ResolveCtx {
        params,
        signals: HashMap::new(),
        widths: HashMap::new(),
    };
    for (name, m) in &names {
        let w = m.width.unwrap_or(1);
        let init = m.init.map(|b| b.resize(w)).unwrap_or_else(|| Bv::zeros(w));
        let id = match (m.dir, m.is_reg) {
            (Some(PDir::Input), _) => builder.input(name, w),
            (Some(PDir::Output), true) => builder.output_reg(name, w, init),
            (Some(PDir::Output), false) => builder.output(name, w),
            (None, true) => builder.reg(name, w, init),
            (None, false) => builder.wire(name, w),
        };
        ctx.signals.insert((*name).clone(), id);
        ctx.widths.insert((*name).clone(), w);
    }

    // Clock/reset designation: posedge signals never read in bodies are
    // clocks; name-based reset detection.
    let mut posedge_names: Vec<String> = Vec::new();
    for item in &ast.items {
        if let PItem::Always { posedges, .. } = item {
            for p in posedges {
                if !posedge_names.contains(p) {
                    posedge_names.push(p.clone());
                }
            }
        }
    }
    for (name, m) in &names {
        if m.dir == Some(PDir::Input)
            && (is_clock_name(name) || (posedge_names.contains(name) && !is_reset_name(name)))
        {
            builder.designate_clock(ctx.signals[*name]);
            break;
        }
    }
    for (name, m) in &names {
        if m.dir == Some(PDir::Input) && is_reset_name(name) {
            builder.designate_reset(ctx.signals[*name]);
            break;
        }
    }
    let reset_name: Option<String> = names
        .iter()
        .find(|(n, m)| m.dir == Some(PDir::Input) && is_reset_name(n))
        .map(|(n, _)| (*n).clone());

    // Pass 4: processes.
    for item in &ast.items {
        match item {
            PItem::Assign(lhs, rhs) => {
                let id = *ctx
                    .signals
                    .get(lhs)
                    .ok_or_else(|| RtlError::UnknownSignal { name: lhs.clone() })?;
                let rhs = resolve_expr(rhs, &ctx)?;
                builder.assign(id, rhs);
            }
            PItem::Always { seq, body, .. } => {
                let mut result = Ok(());
                if *seq {
                    builder.always_seq(|sb| {
                        result = lower_stmt(sb, body, &ctx);
                    });
                    // Extract reset-branch constants as register inits.
                    if let Some(rn) = &reset_name {
                        let mut inits = Vec::new();
                        collect_reset_inits(body, rn, &ctx.params, &mut inits);
                        for (name, v) in inits {
                            if let Some(&id) = ctx.signals.get(&name) {
                                builder.set_init(id, v);
                            }
                        }
                    }
                } else {
                    builder.always_comb(|sb| {
                        result = lower_stmt(sb, body, &ctx);
                    });
                }
                result?;
            }
            PItem::Decl(_) | PItem::Param(_, _) => {}
        }
    }

    // FSM heuristic: a reg used as a whole-signal case subject is state.
    for item in &ast.items {
        if let PItem::Always { body, .. } = item {
            mark_fsm_subjects(body, &ctx, &mut builder);
        }
    }

    builder.build()
}

fn mark_fsm_subjects(stmt: &PStmt, ctx: &ResolveCtx, builder: &mut ModuleBuilder) {
    match stmt {
        PStmt::Block(body) => {
            for s in body {
                mark_fsm_subjects(s, ctx, builder);
            }
        }
        PStmt::If { then_s, else_s, .. } => {
            mark_fsm_subjects(then_s, ctx, builder);
            if let Some(e) = else_s {
                mark_fsm_subjects(e, ctx, builder);
            }
        }
        PStmt::Case {
            subject,
            arms,
            default,
            ..
        } => {
            if let PExpr::Ident(n) = subject {
                if let Some(&id) = ctx.signals.get(n) {
                    builder.mark_fsm(id);
                }
            }
            for (_, body) in arms {
                mark_fsm_subjects(body, ctx, builder);
            }
            if let Some(d) = default {
                mark_fsm_subjects(d, ctx, builder);
            }
        }
        PStmt::Assign { .. } => {}
    }
}
