//! Tokenizer for the Verilog subset.

use crate::error::RtlError;

/// A lexical token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// Token payloads.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Numeric literal: optional explicit width, value.
    Number {
        /// Declared width from a sized literal like `4'b1010`.
        width: Option<u32>,
        /// The numeric value.
        value: u64,
    },
    /// Punctuation or operator.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// Punctuation and operator tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Punct {
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Colon,
    Comma,
    At,
    Question,
    Tilde,
    Bang,
    Amp,
    AmpAmp,
    Pipe,
    PipePipe,
    Caret,
    Plus,
    Minus,
    Star,
    EqEq,
    BangEq,
    Lt,
    Le,
    Gt,
    Ge,
    Shl,
    Shr,
    Eq,
}

/// Lexes `src` into a token stream (ending with [`TokenKind::Eof`]).
///
/// # Errors
///
/// Returns [`RtlError::Parse`] on malformed literals, unterminated block
/// comments, or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>, RtlError> {
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    let mut out = Vec::new();

    let err = |line: u32, col: u32, msg: String| RtlError::Parse { line, col, msg };

    macro_rules! advance {
        () => {{
            if bytes[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (tl, tc) = (line, col);
        if c.is_whitespace() {
            advance!();
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == '/' {
                while i < bytes.len() && bytes[i] != '\n' {
                    advance!();
                }
                continue;
            }
            if bytes[i + 1] == '*' {
                advance!();
                advance!();
                let mut closed = false;
                while i + 1 < bytes.len() {
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        advance!();
                        advance!();
                        closed = true;
                        break;
                    }
                    advance!();
                }
                if !closed {
                    return Err(err(tl, tc, "unterminated block comment".into()));
                }
                continue;
            }
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' || c == '\\' {
            let mut s = String::new();
            if c == '\\' {
                // Escaped identifier: up to whitespace.
                advance!();
                while i < bytes.len() && !bytes[i].is_whitespace() {
                    s.push(bytes[i]);
                    advance!();
                }
            } else {
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '$')
                {
                    s.push(bytes[i]);
                    advance!();
                }
            }
            out.push(Token {
                kind: TokenKind::Ident(s),
                line: tl,
                col: tc,
            });
            continue;
        }
        // Numbers: `123`, `4'b1010`, `'h3f`, with optional underscores.
        if c.is_ascii_digit() || c == '\'' {
            let mut width: Option<u32> = None;
            if c.is_ascii_digit() {
                let mut digits = String::new();
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '_') {
                    if bytes[i] != '_' {
                        digits.push(bytes[i]);
                    }
                    advance!();
                }
                let v: u64 = digits
                    .parse()
                    .map_err(|_| err(tl, tc, format!("bad number `{digits}`")))?;
                if i < bytes.len() && bytes[i] == '\'' {
                    if v == 0 || v > 64 {
                        return Err(err(
                            tl,
                            tc,
                            format!("literal width {v} out of range 1..=64"),
                        ));
                    }
                    width = Some(v as u32);
                } else {
                    out.push(Token {
                        kind: TokenKind::Number {
                            width: None,
                            value: v,
                        },
                        line: tl,
                        col: tc,
                    });
                    continue;
                }
            }
            // Based literal after the tick.
            debug_assert_eq!(bytes[i], '\'');
            advance!();
            if i >= bytes.len() {
                return Err(err(tl, tc, "truncated based literal".into()));
            }
            let base_ch = bytes[i].to_ascii_lowercase();
            let radix = match base_ch {
                'b' => 2,
                'o' => 8,
                'd' => 10,
                'h' => 16,
                _ => return Err(err(tl, tc, format!("unknown literal base `{base_ch}`"))),
            };
            advance!();
            let mut digits = String::new();
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                if bytes[i] != '_' {
                    digits.push(bytes[i]);
                }
                advance!();
            }
            if digits.is_empty() {
                return Err(err(tl, tc, "based literal missing digits".into()));
            }
            let value = u64::from_str_radix(&digits, radix)
                .map_err(|_| err(tl, tc, format!("bad base-{radix} literal `{digits}`")))?;
            out.push(Token {
                kind: TokenKind::Number { width, value },
                line: tl,
                col: tc,
            });
            continue;
        }
        // Operators and punctuation.
        let two = if i + 1 < bytes.len() {
            Some((bytes[i], bytes[i + 1]))
        } else {
            None
        };
        let (punct, len) = match (c, two) {
            (_, Some(('&', '&'))) => (Punct::AmpAmp, 2),
            (_, Some(('|', '|'))) => (Punct::PipePipe, 2),
            (_, Some(('=', '='))) => (Punct::EqEq, 2),
            (_, Some(('!', '='))) => (Punct::BangEq, 2),
            (_, Some(('<', '='))) => (Punct::Le, 2),
            (_, Some(('>', '='))) => (Punct::Ge, 2),
            (_, Some(('<', '<'))) => (Punct::Shl, 2),
            (_, Some(('>', '>'))) => (Punct::Shr, 2),
            ('(', _) => (Punct::LParen, 1),
            (')', _) => (Punct::RParen, 1),
            ('[', _) => (Punct::LBracket, 1),
            (']', _) => (Punct::RBracket, 1),
            ('{', _) => (Punct::LBrace, 1),
            ('}', _) => (Punct::RBrace, 1),
            (';', _) => (Punct::Semi, 1),
            (':', _) => (Punct::Colon, 1),
            (',', _) => (Punct::Comma, 1),
            ('@', _) => (Punct::At, 1),
            ('?', _) => (Punct::Question, 1),
            ('~', _) => (Punct::Tilde, 1),
            ('!', _) => (Punct::Bang, 1),
            ('&', _) => (Punct::Amp, 1),
            ('|', _) => (Punct::Pipe, 1),
            ('^', _) => (Punct::Caret, 1),
            ('+', _) => (Punct::Plus, 1),
            ('-', _) => (Punct::Minus, 1),
            ('*', _) => (Punct::Star, 1),
            ('<', _) => (Punct::Lt, 1),
            ('>', _) => (Punct::Gt, 1),
            ('=', _) => (Punct::Eq, 1),
            _ => {
                return Err(err(tl, tc, format!("unexpected character `{c}`")));
            }
        };
        for _ in 0..len {
            advance!();
        }
        out.push(Token {
            kind: TokenKind::Punct(punct),
            line: tl,
            col: tc,
        });
    }
    out.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_identifiers_and_numbers() {
        let ks = kinds("module m; 4'b1010 8'hff 42 'd7");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("module".into()),
                TokenKind::Ident("m".into()),
                TokenKind::Punct(Punct::Semi),
                TokenKind::Number {
                    width: Some(4),
                    value: 0b1010
                },
                TokenKind::Number {
                    width: Some(8),
                    value: 0xff
                },
                TokenKind::Number {
                    width: None,
                    value: 42
                },
                TokenKind::Number {
                    width: None,
                    value: 7
                },
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators_greedily() {
        let ks = kinds("<= < == = && & << <");
        assert_eq!(
            ks,
            vec![
                TokenKind::Punct(Punct::Le),
                TokenKind::Punct(Punct::Lt),
                TokenKind::Punct(Punct::EqEq),
                TokenKind::Punct(Punct::Eq),
                TokenKind::Punct(Punct::AmpAmp),
                TokenKind::Punct(Punct::Amp),
                TokenKind::Punct(Punct::Shl),
                TokenKind::Punct(Punct::Lt),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("a // line comment\n /* block \n comment */ b");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn underscores_in_literals() {
        let ks = kinds("16'b1010_0101_1111_0000 1_000");
        assert_eq!(
            ks,
            vec![
                TokenKind::Number {
                    width: Some(16),
                    value: 0b1010_0101_1111_0000
                },
                TokenKind::Number {
                    width: None,
                    value: 1000
                },
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tracks_positions() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(lex("4'q0").is_err());
        assert!(lex("\u{1F600}").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("65'h0").is_err());
    }
}
