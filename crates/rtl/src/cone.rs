//! Cone-of-influence analysis — the paper's *static analyzer*.
//!
//! GoldMine restricts the decision-tree miner to the variables that can
//! actually affect a target output (Definition 8 in the paper: "the logic
//! cone of an output z is the set of variables that affect z", computed as
//! a transitive closure). This keeps the mining search space at `n << N`.

use crate::elab::Elab;
use crate::module::{Module, SignalId};
use std::collections::{BTreeSet, HashMap};

/// The logic cone of a target signal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cone {
    /// The signal the cone was computed for.
    pub target: SignalId,
    /// Every signal that (transitively) affects the target, including the
    /// target itself. Ascending order.
    pub signals: Vec<SignalId>,
    /// The primary inputs within the cone (clock/reset excluded).
    pub inputs: Vec<SignalId>,
    /// The state elements within the cone.
    pub state: Vec<SignalId>,
}

impl Cone {
    /// Whether `sig` belongs to the cone.
    pub fn contains(&self, sig: SignalId) -> bool {
        self.signals.binary_search(&sig).is_ok()
    }
}

/// Computes direct dependencies for every signal: the signals read by the
/// process driving it. For state elements these are the next-state
/// dependencies.
fn direct_deps(module: &Module, elab: &Elab) -> HashMap<SignalId, Vec<SignalId>> {
    let mut deps = HashMap::new();
    for sig in module.signal_ids() {
        let d = match elab.driver(sig) {
            Some(p) => module.processes()[p].read_set(),
            None => Vec::new(),
        };
        deps.insert(sig, d);
    }
    deps
}

/// Computes the logic cone of influence for `target`.
///
/// The closure follows the driver of each signal: a combinationally driven
/// signal depends on everything its process reads; a state element depends
/// on everything its sequential process reads (its previous-cycle support).
/// The clock and reset inputs are excluded from the reported `inputs`
/// (they are environment, not data).
pub fn cone_of(module: &Module, elab: &Elab, target: SignalId) -> Cone {
    let deps = direct_deps(module, elab);
    let mut seen: BTreeSet<SignalId> = BTreeSet::new();
    let mut work = vec![target];
    while let Some(s) = work.pop() {
        if !seen.insert(s) {
            continue;
        }
        if let Some(ds) = deps.get(&s) {
            for &d in ds {
                if !seen.contains(&d) {
                    work.push(d);
                }
            }
        }
    }
    let signals: Vec<SignalId> = seen.into_iter().collect();
    let inputs = signals
        .iter()
        .copied()
        .filter(|s| {
            module.signal(*s).is_input() && Some(*s) != module.clock() && Some(*s) != module.reset()
        })
        .collect();
    let state = signals
        .iter()
        .copied()
        .filter(|s| elab.is_state(*s))
        .collect();
    Cone {
        target,
        signals,
        inputs,
        state,
    }
}

/// Computes cones for every primary output of the module.
pub fn output_cones(module: &Module, elab: &Elab) -> Vec<Cone> {
    module
        .outputs()
        .into_iter()
        .map(|o| cone_of(module, elab, o))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bv::Bv;
    use crate::elab::elaborate;
    use crate::expr::Expr;
    use crate::module::ModuleBuilder;

    #[test]
    fn cone_excludes_unrelated_inputs() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 1);
        let c = b.input("c", 1);
        let unrelated = b.input("unrelated", 1);
        let w = b.wire("w", 1);
        let y = b.output("y", 1);
        let z = b.output("z", 1);
        b.assign(w, Expr::Signal(a).and(Expr::Signal(c)));
        b.assign(y, Expr::Signal(w).not());
        b.assign(z, Expr::Signal(unrelated));
        let m = b.finish();
        let e = elaborate(&m).unwrap();
        let cone = cone_of(&m, &e, y);
        assert!(cone.contains(a) && cone.contains(c) && cone.contains(w));
        assert!(!cone.contains(unrelated));
        assert_eq!(cone.inputs, vec![a, c]);
        assert!(cone.state.is_empty());
    }

    #[test]
    fn cone_follows_state_back_through_time() {
        let mut b = ModuleBuilder::new("m");
        let _clk = b.clock("clk");
        let rst = b.reset("rst");
        let d = b.input("d", 1);
        let q1 = b.reg("q1", 1, Bv::zero_bit());
        let q2 = b.output_reg("q2", 1, Bv::zero_bit());
        b.always_seq(|p| {
            p.if_else(
                Expr::Signal(rst),
                |t| {
                    t.assign(q1, Expr::zero());
                    t.assign(q2, Expr::zero());
                },
                |e| {
                    e.assign(q1, Expr::Signal(d));
                    e.assign(q2, Expr::Signal(q1));
                },
            );
        });
        let m = b.finish();
        let e = elaborate(&m).unwrap();
        let cone = cone_of(&m, &e, q2);
        assert!(cone.contains(d), "input reaches q2 through q1");
        assert_eq!(cone.inputs, vec![d], "clock and reset are excluded");
        assert_eq!(cone.state, vec![q1, q2]);
    }

    #[test]
    fn output_cones_cover_all_outputs() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 1);
        let y = b.output("y", 1);
        let z = b.output("z", 1);
        b.assign(y, Expr::Signal(a));
        b.assign(z, Expr::Signal(a).not());
        let m = b.finish();
        let e = elaborate(&m).unwrap();
        let cones = output_cones(&m, &e);
        assert_eq!(cones.len(), 2);
        assert_eq!(cones[0].target, y);
        assert_eq!(cones[1].target, z);
    }
}
