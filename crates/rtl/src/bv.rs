//! Fixed-width bit-vector values.
//!
//! All signal values in the RTL IR are [`Bv`]s: two-valued (0/1) bit
//! vectors of width 1..=64. Arithmetic wraps modulo `2^width` and all
//! results are kept masked, so `Bv` can be compared structurally.

use std::fmt;

/// Maximum supported signal width in bits.
pub const MAX_WIDTH: u32 = 64;

/// A two-valued bit-vector with a fixed width between 1 and 64 bits.
///
/// The representation invariant is that all bits above `width` are zero;
/// every constructor and operation re-establishes it, so `PartialEq`/`Hash`
/// are structural equality on (width, value).
///
/// # Examples
///
/// ```
/// use gm_rtl::Bv;
///
/// let a = Bv::new(0b1010, 4);
/// let b = Bv::new(0b0110, 4);
/// assert_eq!(a.add(b), Bv::new(0b0000, 4)); // wraps mod 2^4
/// assert_eq!(a.and(b), Bv::new(0b0010, 4));
/// assert!(a.bit(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bv {
    bits: u64,
    width: u32,
}

#[inline]
fn mask(width: u32) -> u64 {
    debug_assert!((1..=MAX_WIDTH).contains(&width));
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[allow(clippy::should_implement_trait)] // named ops mirror Verilog semantics, not Rust operator traits
impl Bv {
    /// Creates a bit-vector from `bits`, truncated to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than [`MAX_WIDTH`].
    #[inline]
    pub fn new(bits: u64, width: u32) -> Self {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "bit-vector width {width} out of range 1..=64"
        );
        Bv {
            bits: bits & mask(width),
            width,
        }
    }

    /// The single-bit vector `1'b0`.
    #[inline]
    pub fn zero_bit() -> Self {
        Bv { bits: 0, width: 1 }
    }

    /// The single-bit vector `1'b1`.
    #[inline]
    pub fn one_bit() -> Self {
        Bv { bits: 1, width: 1 }
    }

    /// A zero value of the given width.
    #[inline]
    pub fn zeros(width: u32) -> Self {
        Bv::new(0, width)
    }

    /// An all-ones value of the given width.
    #[inline]
    pub fn ones(width: u32) -> Self {
        Bv::new(u64::MAX, width)
    }

    /// A single-bit vector from a Rust `bool`.
    #[inline]
    pub fn from_bool(b: bool) -> Self {
        Bv {
            bits: b as u64,
            width: 1,
        }
    }

    /// The raw bits, with everything above `width` guaranteed zero.
    #[inline]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// The width in bits (1..=64).
    #[inline]
    pub fn width(self) -> u32 {
        self.width
    }

    /// Whether any bit is set; the Verilog truthiness of the value.
    #[inline]
    pub fn is_nonzero(self) -> bool {
        self.bits != 0
    }

    /// Whether the value is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.bits == 0
    }

    /// The value of bit `i` (little-endian: bit 0 is the LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[inline]
    pub fn bit(self, i: u32) -> bool {
        assert!(i < self.width, "bit index {i} out of width {}", self.width);
        (self.bits >> i) & 1 == 1
    }

    /// Returns a copy with bit `i` set to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[inline]
    pub fn with_bit(self, i: u32, v: bool) -> Self {
        assert!(i < self.width, "bit index {i} out of width {}", self.width);
        let bits = if v {
            self.bits | (1 << i)
        } else {
            self.bits & !(1 << i)
        };
        Bv {
            bits,
            width: self.width,
        }
    }

    /// Zero-extends or truncates to `width`.
    #[inline]
    pub fn resize(self, width: u32) -> Self {
        Bv::new(self.bits, width)
    }

    /// Bitwise AND. Operands are zero-extended to the wider width.
    #[inline]
    pub fn and(self, rhs: Self) -> Self {
        let w = self.width.max(rhs.width);
        Bv::new(self.bits & rhs.bits, w)
    }

    /// Bitwise OR. Operands are zero-extended to the wider width.
    #[inline]
    pub fn or(self, rhs: Self) -> Self {
        let w = self.width.max(rhs.width);
        Bv::new(self.bits | rhs.bits, w)
    }

    /// Bitwise XOR. Operands are zero-extended to the wider width.
    #[inline]
    pub fn xor(self, rhs: Self) -> Self {
        let w = self.width.max(rhs.width);
        Bv::new(self.bits ^ rhs.bits, w)
    }

    /// Bitwise NOT at this value's width.
    #[inline]
    pub fn not(self) -> Self {
        Bv::new(!self.bits, self.width)
    }

    /// Two's-complement negation modulo `2^width`.
    #[inline]
    pub fn neg(self) -> Self {
        Bv::new(self.bits.wrapping_neg(), self.width)
    }

    /// Addition modulo `2^max_width`.
    #[inline]
    pub fn add(self, rhs: Self) -> Self {
        let w = self.width.max(rhs.width);
        Bv::new(self.bits.wrapping_add(rhs.bits), w)
    }

    /// Subtraction modulo `2^max_width`.
    #[inline]
    pub fn sub(self, rhs: Self) -> Self {
        let w = self.width.max(rhs.width);
        Bv::new(self.bits.wrapping_sub(rhs.bits), w)
    }

    /// Multiplication modulo `2^max_width`.
    #[inline]
    pub fn mul(self, rhs: Self) -> Self {
        let w = self.width.max(rhs.width);
        Bv::new(self.bits.wrapping_mul(rhs.bits), w)
    }

    /// Unsigned equality as a single-bit result.
    #[inline]
    pub fn eq_bit(self, rhs: Self) -> Self {
        Bv::from_bool(self.bits == rhs.bits)
    }

    /// Unsigned inequality as a single-bit result.
    #[inline]
    pub fn ne_bit(self, rhs: Self) -> Self {
        Bv::from_bool(self.bits != rhs.bits)
    }

    /// Unsigned less-than as a single-bit result.
    #[inline]
    pub fn lt_bit(self, rhs: Self) -> Self {
        Bv::from_bool(self.bits < rhs.bits)
    }

    /// Unsigned less-or-equal as a single-bit result.
    #[inline]
    pub fn le_bit(self, rhs: Self) -> Self {
        Bv::from_bool(self.bits <= rhs.bits)
    }

    /// Logical shift left; the result keeps the left operand's width.
    /// Shift amounts at or beyond the width produce zero.
    #[inline]
    pub fn shl(self, amount: Self) -> Self {
        let sh = amount.bits;
        if sh >= u64::from(self.width) {
            Bv::zeros(self.width)
        } else {
            Bv::new(self.bits << sh, self.width)
        }
    }

    /// Logical shift right; the result keeps the left operand's width.
    /// Shift amounts at or beyond the width produce zero.
    #[inline]
    pub fn shr(self, amount: Self) -> Self {
        let sh = amount.bits;
        if sh >= u64::from(self.width) {
            Bv::zeros(self.width)
        } else {
            Bv::new(self.bits >> sh, self.width)
        }
    }

    /// AND-reduction: 1 iff all bits are set.
    #[inline]
    pub fn reduce_and(self) -> Self {
        Bv::from_bool(self.bits == mask(self.width))
    }

    /// OR-reduction: 1 iff any bit is set.
    #[inline]
    pub fn reduce_or(self) -> Self {
        Bv::from_bool(self.bits != 0)
    }

    /// XOR-reduction: parity of the set bits.
    #[inline]
    pub fn reduce_xor(self) -> Self {
        Bv::from_bool(self.bits.count_ones() % 2 == 1)
    }

    /// Extracts bits `hi..=lo` (inclusive, `hi >= lo`) as a new value of
    /// width `hi - lo + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= self.width()`.
    #[inline]
    pub fn slice(self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo, "slice [{hi}:{lo}] reversed");
        assert!(
            hi < self.width,
            "slice [{hi}:{lo}] exceeds width {}",
            self.width
        );
        Bv::new(self.bits >> lo, hi - lo + 1)
    }

    /// Concatenates `self` above `low` (Verilog `{self, low}` ordering).
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds [`MAX_WIDTH`].
    #[inline]
    pub fn concat(self, low: Self) -> Self {
        let w = self.width + low.width;
        assert!(w <= MAX_WIDTH, "concatenation width {w} exceeds 64");
        Bv {
            bits: (self.bits << low.width) | low.bits,
            width: w,
        }
    }
}

impl fmt::Debug for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'d{}", self.width, self.bits)
    }
}

impl fmt::Display for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width == 1 {
            write!(f, "{}", self.bits)
        } else {
            write!(f, "{}'d{}", self.width, self.bits)
        }
    }
}

impl fmt::Binary for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}'b{:0w$b}",
            self.width,
            self.bits,
            w = self.width as usize
        )
    }
}

impl fmt::LowerHex for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self.bits)
    }
}

impl From<bool> for Bv {
    fn from(b: bool) -> Self {
        Bv::from_bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_masks_to_width() {
        assert_eq!(Bv::new(0xff, 4).bits(), 0xf);
        assert_eq!(Bv::new(0x123, 8).bits(), 0x23);
        assert_eq!(Bv::new(u64::MAX, 64).bits(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "width 0 out of range")]
    fn zero_width_rejected() {
        let _ = Bv::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "width 65 out of range")]
    fn overwide_rejected() {
        let _ = Bv::new(0, 65);
    }

    #[test]
    fn bit_access() {
        let v = Bv::new(0b1010, 4);
        assert!(!v.bit(0));
        assert!(v.bit(1));
        assert!(!v.bit(2));
        assert!(v.bit(3));
        assert_eq!(v.with_bit(0, true), Bv::new(0b1011, 4));
        assert_eq!(v.with_bit(3, false), Bv::new(0b0010, 4));
    }

    #[test]
    fn arithmetic_wraps() {
        let a = Bv::new(0xf, 4);
        let b = Bv::new(1, 4);
        assert_eq!(a.add(b), Bv::new(0, 4));
        assert_eq!(b.sub(a), Bv::new(2, 4));
        assert_eq!(a.mul(a), Bv::new(0xe1 & 0xf, 4));
        assert_eq!(Bv::new(0, 4).neg(), Bv::new(0, 4));
        assert_eq!(Bv::new(1, 4).neg(), Bv::new(0xf, 4));
    }

    #[test]
    fn mixed_width_ops_extend() {
        let a = Bv::new(0b1, 1);
        let b = Bv::new(0b10, 2);
        let r = a.add(b);
        assert_eq!(r, Bv::new(0b11, 2));
        assert_eq!(a.or(b), Bv::new(0b11, 2));
    }

    #[test]
    fn comparisons_are_single_bit() {
        let a = Bv::new(3, 4);
        let b = Bv::new(5, 4);
        assert_eq!(a.lt_bit(b), Bv::one_bit());
        assert_eq!(b.lt_bit(a), Bv::zero_bit());
        assert_eq!(a.eq_bit(a), Bv::one_bit());
        assert_eq!(a.ne_bit(b), Bv::one_bit());
        assert_eq!(a.le_bit(a), Bv::one_bit());
    }

    #[test]
    fn shifts_saturate_to_zero() {
        let a = Bv::new(0b1001, 4);
        assert_eq!(a.shl(Bv::new(1, 4)), Bv::new(0b0010, 4));
        assert_eq!(a.shr(Bv::new(3, 4)), Bv::new(0b0001, 4));
        assert_eq!(a.shl(Bv::new(4, 4)), Bv::zeros(4));
        assert_eq!(a.shr(Bv::new(15, 4)), Bv::zeros(4));
    }

    #[test]
    fn reductions() {
        assert_eq!(Bv::new(0b1111, 4).reduce_and(), Bv::one_bit());
        assert_eq!(Bv::new(0b1110, 4).reduce_and(), Bv::zero_bit());
        assert_eq!(Bv::new(0b0000, 4).reduce_or(), Bv::zero_bit());
        assert_eq!(Bv::new(0b0100, 4).reduce_or(), Bv::one_bit());
        assert_eq!(Bv::new(0b0110, 4).reduce_xor(), Bv::zero_bit());
        assert_eq!(Bv::new(0b0111, 4).reduce_xor(), Bv::one_bit());
        assert_eq!(Bv::ones(64).reduce_and(), Bv::one_bit());
    }

    #[test]
    fn slice_and_concat() {
        let v = Bv::new(0b1011_0110, 8);
        assert_eq!(v.slice(7, 4), Bv::new(0b1011, 4));
        assert_eq!(v.slice(3, 0), Bv::new(0b0110, 4));
        assert_eq!(v.slice(4, 4), Bv::new(1, 1));
        let hi = Bv::new(0b10, 2);
        let lo = Bv::new(0b011, 3);
        assert_eq!(hi.concat(lo), Bv::new(0b10011, 5));
    }

    #[test]
    fn formatting() {
        let v = Bv::new(0b101, 3);
        assert_eq!(format!("{v}"), "3'd5");
        assert_eq!(format!("{v:b}"), "3'b101");
        assert_eq!(format!("{v:x}"), "3'h5");
        assert_eq!(format!("{}", Bv::one_bit()), "1");
    }

    #[test]
    fn full_width_edge_cases() {
        let m = Bv::ones(64);
        assert_eq!(m.add(Bv::new(1, 64)), Bv::zeros(64));
        assert_eq!(m.not(), Bv::zeros(64));
        assert_eq!(m.slice(63, 63), Bv::one_bit());
    }
}
