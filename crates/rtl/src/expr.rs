//! RTL expressions.
//!
//! Expressions form the right-hand sides of assignments and the conditions
//! of `if`/`case` statements. They follow simplified synthesizable-Verilog
//! semantics: everything is unsigned, operands are zero-extended to a
//! common width, and arithmetic wraps.

use crate::bv::Bv;
use crate::module::SignalId;
use std::fmt;

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Bitwise complement `~x`.
    Not,
    /// Two's-complement negation `-x`.
    Neg,
    /// AND reduction `&x` (single-bit result).
    RedAnd,
    /// OR reduction `|x` (single-bit result).
    RedOr,
    /// XOR reduction `^x` (single-bit result).
    RedXor,
    /// Logical negation `!x` (single-bit result, true iff `x == 0`).
    LogicNot,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Bitwise AND `a & b`.
    And,
    /// Bitwise OR `a | b`.
    Or,
    /// Bitwise XOR `a ^ b`.
    Xor,
    /// Wrapping addition `a + b`.
    Add,
    /// Wrapping subtraction `a - b`.
    Sub,
    /// Wrapping multiplication `a * b`.
    Mul,
    /// Equality `a == b` (single-bit result).
    Eq,
    /// Inequality `a != b` (single-bit result).
    Ne,
    /// Unsigned `a < b` (single-bit result).
    Lt,
    /// Unsigned `a <= b` (single-bit result).
    Le,
    /// Unsigned `a > b` (single-bit result).
    Gt,
    /// Unsigned `a >= b` (single-bit result).
    Ge,
    /// Logical shift left `a << b` (result width of `a`).
    Shl,
    /// Logical shift right `a >> b` (result width of `a`).
    Shr,
    /// Logical AND `a && b` (single-bit result on truthiness).
    LogicAnd,
    /// Logical OR `a || b` (single-bit result on truthiness).
    LogicOr,
}

impl BinaryOp {
    /// Whether the operator always yields a single-bit result.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::LogicAnd
                | BinaryOp::LogicOr
        )
    }
}

/// An RTL expression tree.
///
/// Widths are derived structurally (see [`Expr::width_in`]); signal widths
/// come from the module's signal table, so the same expression value can
/// only be interpreted against the module it was built for.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal constant.
    Const(Bv),
    /// The current value of a signal.
    Signal(SignalId),
    /// A unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// A binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// The ternary multiplexer `cond ? t : e`.
    Mux {
        /// Select condition (any width; nonzero selects `then_val`).
        cond: Box<Expr>,
        /// Value when `cond` is nonzero.
        then_val: Box<Expr>,
        /// Value when `cond` is zero.
        else_val: Box<Expr>,
    },
    /// Single-bit select `base[bit]`.
    Index {
        /// Expression being indexed.
        base: Box<Expr>,
        /// Bit position (0 = LSB).
        bit: u32,
    },
    /// Part select `base[hi:lo]`, inclusive.
    Slice {
        /// Expression being sliced.
        base: Box<Expr>,
        /// High bit position.
        hi: u32,
        /// Low bit position.
        lo: u32,
    },
    /// Concatenation `{a, b, ...}` with the first element in the MSBs.
    Concat(Vec<Expr>),
}

#[allow(clippy::should_implement_trait)] // named ops mirror Verilog operators
impl Expr {
    /// A single-bit constant 0.
    pub fn zero() -> Expr {
        Expr::Const(Bv::zero_bit())
    }

    /// A single-bit constant 1.
    pub fn one() -> Expr {
        Expr::Const(Bv::one_bit())
    }

    /// A constant of the given value and width.
    pub fn lit(bits: u64, width: u32) -> Expr {
        Expr::Const(Bv::new(bits, width))
    }

    /// Shorthand for a unary operation.
    pub fn unary(op: UnaryOp, e: Expr) -> Expr {
        Expr::Unary(op, Box::new(e))
    }

    /// Shorthand for a binary operation.
    pub fn binary(op: BinaryOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// Bitwise complement of this expression.
    pub fn not(self) -> Expr {
        Expr::unary(UnaryOp::Not, self)
    }

    /// Bitwise AND of two expressions.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::And, self, rhs)
    }

    /// Bitwise OR of two expressions.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Or, self, rhs)
    }

    /// Bitwise XOR of two expressions.
    pub fn xor(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Xor, self, rhs)
    }

    /// Equality predicate against another expression.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Eq, self, rhs)
    }

    /// Equality predicate against a constant.
    pub fn eq_lit(self, bits: u64, width: u32) -> Expr {
        self.eq(Expr::lit(bits, width))
    }

    /// Multiplexer with this expression as the select.
    pub fn mux(self, then_val: Expr, else_val: Expr) -> Expr {
        Expr::Mux {
            cond: Box::new(self),
            then_val: Box::new(then_val),
            else_val: Box::new(else_val),
        }
    }

    /// Single-bit select `self[bit]`.
    pub fn index(self, bit: u32) -> Expr {
        Expr::Index {
            base: Box::new(self),
            bit,
        }
    }

    /// Part select `self[hi:lo]`.
    pub fn slice(self, hi: u32, lo: u32) -> Expr {
        Expr::Slice {
            base: Box::new(self),
            hi,
            lo,
        }
    }

    /// Computes the width of this expression given a signal-width lookup.
    ///
    /// The lookup is typically [`crate::Module::signal_width`].
    pub fn width_in(&self, sig_width: &impl Fn(SignalId) -> u32) -> u32 {
        match self {
            Expr::Const(b) => b.width(),
            Expr::Signal(s) => sig_width(*s),
            Expr::Unary(op, a) => match op {
                UnaryOp::Not | UnaryOp::Neg => a.width_in(sig_width),
                UnaryOp::RedAnd | UnaryOp::RedOr | UnaryOp::RedXor | UnaryOp::LogicNot => 1,
            },
            Expr::Binary(op, a, b) => {
                if op.is_predicate() {
                    1
                } else {
                    match op {
                        BinaryOp::Shl | BinaryOp::Shr => a.width_in(sig_width),
                        _ => a.width_in(sig_width).max(b.width_in(sig_width)),
                    }
                }
            }
            Expr::Mux {
                then_val, else_val, ..
            } => then_val
                .width_in(sig_width)
                .max(else_val.width_in(sig_width)),
            Expr::Index { .. } => 1,
            Expr::Slice { hi, lo, .. } => hi - lo + 1,
            Expr::Concat(parts) => parts.iter().map(|p| p.width_in(sig_width)).sum(),
        }
    }

    /// Evaluates the expression with signal values supplied by `lookup`.
    ///
    /// This is the reference semantics used by the behavioral simulator;
    /// the bit-blaster in `gm-mc` is property-tested against it.
    pub fn eval(&self, lookup: &impl Fn(SignalId) -> Bv) -> Bv {
        match self {
            Expr::Const(b) => *b,
            Expr::Signal(s) => lookup(*s),
            Expr::Unary(op, a) => {
                let v = a.eval(lookup);
                match op {
                    UnaryOp::Not => v.not(),
                    UnaryOp::Neg => v.neg(),
                    UnaryOp::RedAnd => v.reduce_and(),
                    UnaryOp::RedOr => v.reduce_or(),
                    UnaryOp::RedXor => v.reduce_xor(),
                    UnaryOp::LogicNot => Bv::from_bool(v.is_zero()),
                }
            }
            Expr::Binary(op, a, b) => {
                let x = a.eval(lookup);
                let y = b.eval(lookup);
                match op {
                    BinaryOp::And => x.and(y),
                    BinaryOp::Or => x.or(y),
                    BinaryOp::Xor => x.xor(y),
                    BinaryOp::Add => x.add(y),
                    BinaryOp::Sub => x.sub(y),
                    BinaryOp::Mul => x.mul(y),
                    BinaryOp::Eq => x.eq_bit(y),
                    BinaryOp::Ne => x.ne_bit(y),
                    BinaryOp::Lt => x.lt_bit(y),
                    BinaryOp::Le => x.le_bit(y),
                    BinaryOp::Gt => y.lt_bit(x),
                    BinaryOp::Ge => y.le_bit(x),
                    BinaryOp::Shl => x.shl(y),
                    BinaryOp::Shr => x.shr(y),
                    BinaryOp::LogicAnd => Bv::from_bool(x.is_nonzero() && y.is_nonzero()),
                    BinaryOp::LogicOr => Bv::from_bool(x.is_nonzero() || y.is_nonzero()),
                }
            }
            Expr::Mux {
                cond,
                then_val,
                else_val,
            } => {
                let w = self.width_in(&|s| lookup(s).width());
                let r = if cond.eval(lookup).is_nonzero() {
                    then_val.eval(lookup)
                } else {
                    else_val.eval(lookup)
                };
                r.resize(w)
            }
            Expr::Index { base, bit } => {
                let v = base.eval(lookup);
                Bv::from_bool(v.bit(*bit))
            }
            Expr::Slice { base, hi, lo } => base.eval(lookup).slice(*hi, *lo),
            Expr::Concat(parts) => {
                let mut acc: Option<Bv> = None;
                for p in parts {
                    let v = p.eval(lookup);
                    acc = Some(match acc {
                        None => v,
                        Some(a) => a.concat(v),
                    });
                }
                acc.expect("concatenation must have at least one element")
            }
        }
    }

    /// Visits every signal referenced by the expression.
    pub fn for_each_signal(&self, f: &mut impl FnMut(SignalId)) {
        match self {
            Expr::Const(_) => {}
            Expr::Signal(s) => f(*s),
            Expr::Unary(_, a) => a.for_each_signal(f),
            Expr::Binary(_, a, b) => {
                a.for_each_signal(f);
                b.for_each_signal(f);
            }
            Expr::Mux {
                cond,
                then_val,
                else_val,
            } => {
                cond.for_each_signal(f);
                then_val.for_each_signal(f);
                else_val.for_each_signal(f);
            }
            Expr::Index { base, .. } => base.for_each_signal(f),
            Expr::Slice { base, .. } => base.for_each_signal(f),
            Expr::Concat(parts) => {
                for p in parts {
                    p.for_each_signal(f);
                }
            }
        }
    }

    /// Collects the set of referenced signals in ascending id order.
    pub fn signals(&self) -> Vec<SignalId> {
        let mut out = Vec::new();
        self.for_each_signal(&mut |s| out.push(s));
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Rewrites every signal reference through `f` (used by mutation
    /// injection and inlining passes).
    pub fn map_signals(&self, f: &impl Fn(SignalId) -> Expr) -> Expr {
        match self {
            Expr::Const(b) => Expr::Const(*b),
            Expr::Signal(s) => f(*s),
            Expr::Unary(op, a) => Expr::unary(*op, a.map_signals(f)),
            Expr::Binary(op, a, b) => Expr::binary(*op, a.map_signals(f), b.map_signals(f)),
            Expr::Mux {
                cond,
                then_val,
                else_val,
            } => Expr::Mux {
                cond: Box::new(cond.map_signals(f)),
                then_val: Box::new(then_val.map_signals(f)),
                else_val: Box::new(else_val.map_signals(f)),
            },
            Expr::Index { base, bit } => Expr::Index {
                base: Box::new(base.map_signals(f)),
                bit: *bit,
            },
            Expr::Slice { base, hi, lo } => Expr::Slice {
                base: Box::new(base.map_signals(f)),
                hi: *hi,
                lo: *lo,
            },
            Expr::Concat(parts) => Expr::Concat(parts.iter().map(|p| p.map_signals(f)).collect()),
        }
    }
}

impl From<Bv> for Expr {
    fn from(b: Bv) -> Expr {
        Expr::Const(b)
    }
}

impl From<SignalId> for Expr {
    fn from(s: SignalId) -> Expr {
        Expr::Signal(s)
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnaryOp::Not => "~",
            UnaryOp::Neg => "-",
            UnaryOp::RedAnd => "&",
            UnaryOp::RedOr => "|",
            UnaryOp::RedXor => "^",
            UnaryOp::LogicNot => "!",
        };
        f.write_str(s)
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::And => "&",
            BinaryOp::Or => "|",
            BinaryOp::Xor => "^",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::LogicAnd => "&&",
            BinaryOp::LogicOr => "||",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u32) -> SignalId {
        SignalId::from_raw(n)
    }

    #[test]
    fn eval_basic_ops() {
        let a = Expr::Signal(sid(0));
        let b = Expr::Signal(sid(1));
        let e = a.clone().and(b.clone()).or(a.clone().xor(b));
        let vals = [Bv::new(0b1100, 4), Bv::new(0b1010, 4)];
        let r = e.eval(&|s| vals[s.index()]);
        assert_eq!(r, Bv::new((0b1100 & 0b1010) | (0b1100 ^ 0b1010), 4));
    }

    #[test]
    fn eval_mux_widens_to_result_width() {
        // cond ? 2'b11 : 4'b0001 must produce a 4-bit result in both arms.
        let m = Expr::Signal(sid(0)).mux(Expr::lit(0b11, 2), Expr::lit(1, 4));
        let taken = m.eval(&|_| Bv::one_bit());
        assert_eq!(taken, Bv::new(0b0011, 4));
        let not_taken = m.eval(&|_| Bv::zero_bit());
        assert_eq!(not_taken, Bv::new(1, 4));
    }

    #[test]
    fn eval_predicates_and_logic() {
        let a = Expr::Signal(sid(0));
        let e = Expr::binary(
            BinaryOp::LogicAnd,
            a.clone().eq_lit(3, 4),
            Expr::unary(UnaryOp::LogicNot, a.clone().eq_lit(5, 4)),
        );
        assert_eq!(e.eval(&|_| Bv::new(3, 4)), Bv::one_bit());
        assert_eq!(e.eval(&|_| Bv::new(5, 4)), Bv::zero_bit());
        assert_eq!(e.eval(&|_| Bv::new(7, 4)), Bv::zero_bit());
    }

    #[test]
    fn width_rules() {
        let w = |_: SignalId| 4u32;
        assert_eq!(Expr::Signal(sid(0)).width_in(&w), 4);
        assert_eq!(Expr::Signal(sid(0)).eq_lit(1, 4).width_in(&w), 1);
        assert_eq!(
            Expr::Signal(sid(0)).and(Expr::lit(1, 8)).width_in(&w),
            8,
            "bitwise ops extend to the wider operand"
        );
        assert_eq!(
            Expr::binary(BinaryOp::Shl, Expr::Signal(sid(0)), Expr::lit(9, 8)).width_in(&w),
            4,
            "shift keeps the left operand width"
        );
        let cat = Expr::Concat(vec![Expr::Signal(sid(0)), Expr::lit(0, 2)]);
        assert_eq!(cat.width_in(&w), 6);
        assert_eq!(Expr::Signal(sid(0)).slice(2, 1).width_in(&w), 2);
        assert_eq!(Expr::Signal(sid(0)).index(3).width_in(&w), 1);
    }

    #[test]
    fn concat_orders_msb_first() {
        let e = Expr::Concat(vec![Expr::lit(0b10, 2), Expr::lit(0b011, 3)]);
        assert_eq!(e.eval(&|_| Bv::zero_bit()), Bv::new(0b10011, 5));
    }

    #[test]
    fn signal_collection_dedups() {
        let a = Expr::Signal(sid(2));
        let e = a.clone().and(a.clone()).or(Expr::Signal(sid(0)));
        assert_eq!(e.signals(), vec![sid(0), sid(2)]);
    }

    #[test]
    fn map_signals_substitutes() {
        let e = Expr::Signal(sid(0)).and(Expr::Signal(sid(1)));
        let m = e.map_signals(&|s| {
            if s == sid(0) {
                Expr::one()
            } else {
                Expr::Signal(s)
            }
        });
        assert_eq!(m, Expr::one().and(Expr::Signal(sid(1))));
    }
}
