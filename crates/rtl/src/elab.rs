//! Elaboration: semantic validation and scheduling of a [`Module`].
//!
//! Elaboration checks the structural rules the rest of the system relies
//! on — single drivers, no combinational loops, no inferred latches, sane
//! bit indexing — and computes the evaluation order for combinational
//! processes. Both the behavioral simulator (`gm-sim`) and the bit-blaster
//! (`gm-mc`) consume the resulting [`Elab`].

use crate::error::{Result, RtlError};
use crate::expr::Expr;
use crate::module::{Module, SignalId, SignalKind};
use crate::stmt::{ProcessKind, Stmt, StmtKind};
use std::collections::HashSet;

/// The result of elaborating a module: schedules and derived signal roles.
#[derive(Clone, Debug)]
pub struct Elab {
    /// Indices (into `module.processes()`) of combinational processes in
    /// topological evaluation order.
    comb_order: Vec<usize>,
    /// Indices of sequential processes, in declaration order.
    seq_processes: Vec<usize>,
    /// Per signal: the index of its driving process, if any.
    driver: Vec<Option<usize>>,
    /// Per signal: whether it is a state element (written sequentially).
    is_state: Vec<bool>,
}

impl Elab {
    /// Combinational process indices in a valid evaluation order.
    pub fn comb_order(&self) -> &[usize] {
        &self.comb_order
    }

    /// Sequential process indices in declaration order.
    pub fn seq_processes(&self) -> &[usize] {
        &self.seq_processes
    }

    /// The process driving `sig`, if any.
    pub fn driver(&self, sig: SignalId) -> Option<usize> {
        self.driver[sig.index()]
    }

    /// Whether `sig` is a state element (assigned at the clock edge).
    pub fn is_state(&self, sig: SignalId) -> bool {
        self.is_state[sig.index()]
    }

    /// All state elements, ascending.
    pub fn state_signals(&self) -> Vec<SignalId> {
        self.is_state
            .iter()
            .enumerate()
            .filter(|(_, s)| **s)
            .map(|(i, _)| SignalId::from_raw(i as u32))
            .collect()
    }
}

/// Validates `module` and computes its evaluation schedule.
///
/// # Errors
///
/// Returns an [`RtlError`] if the module:
/// * assigns an input, or assigns a signal from two processes;
/// * drives a `wire` from a sequential process;
/// * contains a combinational dependency cycle;
/// * fails to assign a combinationally driven signal on every path
///   (latch inference), or reads such a signal before assigning it;
/// * leaves an output undriven;
/// * indexes or slices a value outside its width.
pub fn elaborate(module: &Module) -> Result<Elab> {
    let n = module.signals().len();
    let mut driver: Vec<Option<usize>> = vec![None; n];
    let mut is_state = vec![false; n];

    // Driver uniqueness and storage-class rules.
    for (pi, proc_) in module.processes().iter().enumerate() {
        for sig in proc_.write_set() {
            let record = &module.signal(sig);
            if record.kind() == SignalKind::Input {
                return Err(RtlError::AssignToInput {
                    signal: record.name().to_string(),
                });
            }
            if let Some(_prev) = driver[sig.index()] {
                return Err(RtlError::MultipleDrivers {
                    signal: record.name().to_string(),
                });
            }
            driver[sig.index()] = Some(pi);
            if proc_.kind == ProcessKind::Seq {
                if record.kind() == SignalKind::Wire {
                    return Err(RtlError::StorageClass {
                        signal: record.name().to_string(),
                        msg: "wire driven from a sequential process".to_string(),
                    });
                }
                is_state[sig.index()] = true;
            }
        }
    }

    // Outputs must be driven.
    for out in module.outputs() {
        if driver[out.index()].is_none() {
            return Err(RtlError::UndrivenOutput {
                signal: module.signal(out).name().to_string(),
            });
        }
    }

    // Width sanity for every expression in the module.
    for proc_ in module.processes() {
        proc_.for_each_stmt(&mut |_s| {});
        for stmt in &proc_.body {
            check_stmt_widths(module, stmt)?;
        }
    }

    // Latch / read-before-assign analysis per combinational process.
    for proc_ in module.processes() {
        if proc_.kind != ProcessKind::Comb {
            continue;
        }
        let writes: HashSet<SignalId> = proc_.write_set().into_iter().collect();
        let mut assigned = HashSet::new();
        for stmt in &proc_.body {
            must_assign(module, stmt, &writes, &mut assigned)?;
        }
        for sig in &writes {
            if !assigned.contains(sig) {
                return Err(RtlError::IncompleteAssign {
                    signal: module.signal(*sig).name().to_string(),
                });
            }
        }
    }

    // Topological order of combinational processes.
    let comb: Vec<usize> = module
        .processes()
        .iter()
        .enumerate()
        .filter(|(_, p)| p.kind == ProcessKind::Comb)
        .map(|(i, _)| i)
        .collect();
    let seq_processes: Vec<usize> = module
        .processes()
        .iter()
        .enumerate()
        .filter(|(_, p)| p.kind == ProcessKind::Seq)
        .map(|(i, _)| i)
        .collect();

    let comb_order = topo_sort_comb(module, &comb, &driver)?;

    Ok(Elab {
        comb_order,
        seq_processes,
        driver,
        is_state,
    })
}

fn check_expr_widths(module: &Module, expr: &Expr) -> Result<()> {
    let sig_width = |s: SignalId| module.signal_width(s);
    match expr {
        Expr::Const(_) | Expr::Signal(_) => Ok(()),
        Expr::Unary(_, a) => check_expr_widths(module, a),
        Expr::Binary(_, a, b) => {
            check_expr_widths(module, a)?;
            check_expr_widths(module, b)
        }
        Expr::Mux {
            cond,
            then_val,
            else_val,
        } => {
            check_expr_widths(module, cond)?;
            check_expr_widths(module, then_val)?;
            check_expr_widths(module, else_val)
        }
        Expr::Index { base, bit } => {
            check_expr_widths(module, base)?;
            let w = base.width_in(&sig_width);
            if *bit >= w {
                return Err(RtlError::Width {
                    msg: format!("bit index {bit} out of range for width {w}"),
                });
            }
            Ok(())
        }
        Expr::Slice { base, hi, lo } => {
            check_expr_widths(module, base)?;
            let w = base.width_in(&sig_width);
            if hi < lo || *hi >= w {
                return Err(RtlError::Width {
                    msg: format!("slice [{hi}:{lo}] out of range for width {w}"),
                });
            }
            Ok(())
        }
        Expr::Concat(parts) => {
            if parts.is_empty() {
                return Err(RtlError::Width {
                    msg: "empty concatenation".to_string(),
                });
            }
            let mut total = 0u32;
            for p in parts {
                check_expr_widths(module, p)?;
                total += p.width_in(&sig_width);
            }
            if total > crate::bv::MAX_WIDTH {
                return Err(RtlError::Width {
                    msg: format!("concatenation width {total} exceeds 64"),
                });
            }
            Ok(())
        }
    }
}

fn check_stmt_widths(module: &Module, stmt: &Stmt) -> Result<()> {
    match &stmt.kind {
        StmtKind::Assign { rhs, .. } => check_expr_widths(module, rhs),
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            check_expr_widths(module, cond)?;
            for s in then_body.iter().chain(else_body) {
                check_stmt_widths(module, s)?;
            }
            Ok(())
        }
        StmtKind::Case {
            subject,
            arms,
            default,
        } => {
            check_expr_widths(module, subject)?;
            for arm in arms {
                for s in &arm.body {
                    check_stmt_widths(module, s)?;
                }
            }
            if let Some(d) = default {
                for s in d {
                    check_stmt_widths(module, s)?;
                }
            }
            Ok(())
        }
    }
}

/// Computes the set of signals definitely assigned by `stmt` into
/// `assigned`, erroring on reads of not-yet-assigned process-local signals.
fn must_assign(
    module: &Module,
    stmt: &Stmt,
    writes: &HashSet<SignalId>,
    assigned: &mut HashSet<SignalId>,
) -> Result<()> {
    let check_reads = |expr: &Expr, assigned: &HashSet<SignalId>| -> Result<()> {
        let mut err = None;
        expr.for_each_signal(&mut |s| {
            if writes.contains(&s) && !assigned.contains(&s) && err.is_none() {
                err = Some(RtlError::ReadBeforeAssign {
                    signal: module.signal(s).name().to_string(),
                });
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    };
    match &stmt.kind {
        StmtKind::Assign { lhs, rhs } => {
            check_reads(rhs, assigned)?;
            assigned.insert(*lhs);
            Ok(())
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            check_reads(cond, assigned)?;
            let mut then_set = assigned.clone();
            for s in then_body {
                must_assign(module, s, writes, &mut then_set)?;
            }
            let mut else_set = assigned.clone();
            for s in else_body {
                must_assign(module, s, writes, &mut else_set)?;
            }
            *assigned = then_set.intersection(&else_set).copied().collect();
            Ok(())
        }
        StmtKind::Case {
            subject,
            arms,
            default,
        } => {
            check_reads(subject, assigned)?;
            let sig_width = |s: SignalId| module.signal_width(s);
            let subject_width = subject.width_in(&sig_width);
            let mut label_count = 0u64;
            let mut branch_sets: Vec<HashSet<SignalId>> = Vec::new();
            for arm in arms {
                label_count += arm.labels.len() as u64;
                let mut set = assigned.clone();
                for s in &arm.body {
                    must_assign(module, s, writes, &mut set)?;
                }
                branch_sets.push(set);
            }
            let full_cover =
                default.is_some() || (subject_width < 64 && label_count >= (1u64 << subject_width));
            if let Some(d) = default {
                let mut set = assigned.clone();
                for s in d {
                    must_assign(module, s, writes, &mut set)?;
                }
                branch_sets.push(set);
            }
            if full_cover && !branch_sets.is_empty() {
                let mut iter = branch_sets.into_iter();
                let mut acc = iter.next().unwrap();
                for s in iter {
                    acc = acc.intersection(&s).copied().collect();
                }
                *assigned = acc;
            }
            // Without full coverage the fall-through keeps the prior set.
            Ok(())
        }
    }
}

fn topo_sort_comb(module: &Module, comb: &[usize], driver: &[Option<usize>]) -> Result<Vec<usize>> {
    // Edge P -> Q when Q reads a signal written by comb process P.
    let pos: std::collections::HashMap<usize, usize> =
        comb.iter().enumerate().map(|(k, p)| (*p, k)).collect();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); comb.len()];
    let mut indegree = vec![0usize; comb.len()];
    for (qi, &q) in comb.iter().enumerate() {
        let reads = module.processes()[q].read_set();
        let mut preds = HashSet::new();
        for r in reads {
            if let Some(p) = driver[r.index()] {
                if let Some(&pk) = pos.get(&p) {
                    if pk != qi {
                        preds.insert(pk);
                    }
                }
            }
        }
        for pk in preds {
            succs[pk].push(qi);
            indegree[qi] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..comb.len()).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(comb.len());
    while let Some(i) = queue.pop() {
        order.push(comb[i]);
        for &s in &succs[i] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() != comb.len() {
        // Collect the names of signals written by processes still in the cycle.
        let in_order: HashSet<usize> = order.iter().copied().collect();
        let mut names = Vec::new();
        for &p in comb {
            if !in_order.contains(&p) {
                for s in module.processes()[p].write_set() {
                    names.push(module.signal(s).name().to_string());
                }
            }
        }
        names.sort();
        return Err(RtlError::CombLoop { cycle: names });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bv::Bv;
    use crate::module::ModuleBuilder;

    #[test]
    fn simple_module_elaborates() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 1);
        let w = b.wire("w", 1);
        let y = b.output("y", 1);
        b.assign(y, Expr::Signal(w));
        b.assign(w, Expr::Signal(a).not());
        let m = b.finish();
        let e = elaborate(&m).unwrap();
        // w's process (index 1) must run before y's (index 0).
        assert_eq!(e.comb_order(), &[1, 0]);
        assert!(!e.is_state(y));
    }

    #[test]
    fn multiple_drivers_detected() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 1);
        let y = b.output("y", 1);
        b.assign(y, Expr::Signal(a));
        b.assign(y, Expr::Signal(a).not());
        let m = b.finish();
        assert_eq!(
            elaborate(&m).unwrap_err(),
            RtlError::MultipleDrivers { signal: "y".into() }
        );
    }

    #[test]
    fn comb_loop_detected() {
        let mut b = ModuleBuilder::new("m");
        let _a = b.input("a", 1);
        let x = b.wire("x", 1);
        let y = b.output("y", 1);
        b.assign(x, Expr::Signal(y));
        b.assign(y, Expr::Signal(x).not());
        let m = b.finish();
        match elaborate(&m).unwrap_err() {
            RtlError::CombLoop { cycle } => {
                assert!(cycle.contains(&"x".to_string()) && cycle.contains(&"y".to_string()));
            }
            other => panic!("expected comb loop, got {other}"),
        }
    }

    #[test]
    fn latch_inference_rejected() {
        let mut b = ModuleBuilder::new("m");
        let c = b.input("c", 1);
        let y = b.output("y", 1);
        b.always_comb(|p| {
            p.if_(Expr::Signal(c), |t| t.assign(y, Expr::one()));
        });
        let m = b.finish();
        assert_eq!(
            elaborate(&m).unwrap_err(),
            RtlError::IncompleteAssign { signal: "y".into() }
        );
    }

    #[test]
    fn default_assignment_avoids_latch() {
        let mut b = ModuleBuilder::new("m");
        let c = b.input("c", 1);
        let y = b.output("y", 1);
        b.always_comb(|p| {
            p.assign(y, Expr::zero());
            p.if_(Expr::Signal(c), |t| t.assign(y, Expr::one()));
        });
        let m = b.finish();
        assert!(elaborate(&m).is_ok());
    }

    #[test]
    fn full_case_is_complete() {
        let mut b = ModuleBuilder::new("m");
        let s = b.input("s", 1);
        let y = b.output("y", 1);
        b.always_comb(|p| {
            p.case(Expr::Signal(s), |cb| {
                cb.arm(&[Bv::new(0, 1)], |a| a.assign(y, Expr::one()));
                cb.arm(&[Bv::new(1, 1)], |a| a.assign(y, Expr::zero()));
            });
        });
        let m = b.finish();
        assert!(elaborate(&m).is_ok());
    }

    #[test]
    fn partial_case_without_default_is_a_latch() {
        let mut b = ModuleBuilder::new("m");
        let s = b.input("s", 2);
        let y = b.output("y", 1);
        b.always_comb(|p| {
            p.case(Expr::Signal(s), |cb| {
                cb.arm(&[Bv::new(0, 2)], |a| a.assign(y, Expr::one()));
            });
        });
        let m = b.finish();
        assert_eq!(
            elaborate(&m).unwrap_err(),
            RtlError::IncompleteAssign { signal: "y".into() }
        );
    }

    #[test]
    fn read_before_assign_rejected() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 1);
        let y = b.output("y", 1);
        b.always_comb(|p| {
            // reads y before assigning it in the same comb process
            p.assign(y, Expr::Signal(y).and(Expr::Signal(a)));
        });
        let m = b.finish();
        assert_eq!(
            elaborate(&m).unwrap_err(),
            RtlError::ReadBeforeAssign { signal: "y".into() }
        );
    }

    #[test]
    fn sequential_write_marks_state() {
        let mut b = ModuleBuilder::new("m");
        let _clk = b.clock("clk");
        let d = b.input("d", 1);
        let q = b.output_reg("q", 1, Bv::zero_bit());
        b.always_seq(|p| p.assign(q, Expr::Signal(d)));
        let m = b.finish();
        let e = elaborate(&m).unwrap();
        assert!(e.is_state(q));
        assert_eq!(e.state_signals(), vec![q]);
        assert_eq!(e.seq_processes().len(), 1);
    }

    #[test]
    fn wire_from_seq_process_rejected() {
        let mut b = ModuleBuilder::new("m");
        let d = b.input("d", 1);
        let w = b.wire("w", 1);
        let y = b.output("y", 1);
        b.assign(y, Expr::Signal(w));
        b.always_seq(|p| p.assign(w, Expr::Signal(d)));
        let m = b.finish();
        match elaborate(&m).unwrap_err() {
            RtlError::StorageClass { signal, .. } => assert_eq!(signal, "w"),
            other => panic!("expected storage class error, got {other}"),
        }
    }

    #[test]
    fn undriven_output_rejected() {
        let mut b = ModuleBuilder::new("m");
        b.input("a", 1);
        b.output("y", 1);
        let m = b.finish();
        assert_eq!(
            elaborate(&m).unwrap_err(),
            RtlError::UndrivenOutput { signal: "y".into() }
        );
    }

    #[test]
    fn out_of_range_slice_rejected() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a", 4);
        let y = b.output("y", 1);
        b.assign(y, Expr::Signal(a).index(7));
        let m = b.finish();
        match elaborate(&m).unwrap_err() {
            RtlError::Width { msg } => assert!(msg.contains("7")),
            other => panic!("expected width error, got {other}"),
        }
    }
}
