//! Verilog pretty-printing: the inverse of [`crate::parse_verilog`].
//!
//! Emits a module back as synthesizable-subset Verilog — useful for
//! dumping generated designs and fault mutants, and for exchanging
//! designs with external tools. `parse(print(m))` is behaviorally
//! equivalent to `m` (property-tested in the crate's test suite).

use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::module::{Module, SignalId, SignalKind};
use crate::stmt::{ProcessKind, Stmt, StmtKind};
use std::fmt::Write;

/// Operator precedence for parenthesization (higher binds tighter).
fn precedence(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::LogicOr => 1,
        BinaryOp::LogicAnd => 2,
        BinaryOp::Or => 3,
        BinaryOp::Xor => 4,
        BinaryOp::And => 5,
        BinaryOp::Eq | BinaryOp::Ne => 6,
        BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => 7,
        BinaryOp::Shl | BinaryOp::Shr => 8,
        BinaryOp::Add | BinaryOp::Sub => 9,
        BinaryOp::Mul => 10,
    }
}

fn print_expr(module: &Module, e: &Expr, parent_prec: u8, out: &mut String) {
    match e {
        Expr::Const(b) => {
            let _ = write!(out, "{}'d{}", b.width(), b.bits());
        }
        Expr::Signal(s) => out.push_str(module.signal(*s).name()),
        Expr::Unary(op, a) => {
            let sym = match op {
                UnaryOp::Not => "~",
                UnaryOp::Neg => "-",
                UnaryOp::RedAnd => "&",
                UnaryOp::RedOr => "|",
                UnaryOp::RedXor => "^",
                UnaryOp::LogicNot => "!",
            };
            out.push_str(sym);
            print_expr(module, a, 11, out);
        }
        Expr::Binary(op, a, b) => {
            let prec = precedence(*op);
            let need_parens = prec < parent_prec;
            if need_parens {
                out.push('(');
            }
            print_expr(module, a, prec, out);
            let _ = write!(out, " {op} ");
            // Right operand gets a stricter context to keep left
            // associativity on reparse.
            print_expr(module, b, prec + 1, out);
            if need_parens {
                out.push(')');
            }
        }
        Expr::Mux {
            cond,
            then_val,
            else_val,
        } => {
            if parent_prec > 0 {
                out.push('(');
            }
            print_expr(module, cond, 1, out);
            out.push_str(" ? ");
            print_expr(module, then_val, 0, out);
            out.push_str(" : ");
            print_expr(module, else_val, 0, out);
            if parent_prec > 0 {
                out.push(')');
            }
        }
        Expr::Index { base, bit } => {
            print_base(module, base, out);
            let _ = write!(out, "[{bit}]");
        }
        Expr::Slice { base, hi, lo } => {
            print_base(module, base, out);
            let _ = write!(out, "[{hi}:{lo}]");
        }
        Expr::Concat(parts) => {
            out.push('{');
            for (i, p) in parts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                print_expr(module, p, 0, out);
            }
            out.push('}');
        }
    }
}

/// The parser only supports selects on plain identifiers; anything else
/// would not round-trip, so fail loudly.
fn print_base(module: &Module, base: &Expr, out: &mut String) {
    match base {
        Expr::Signal(s) => out.push_str(module.signal(*s).name()),
        other => panic!("cannot print bit-select of non-signal expression {other:?}"),
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_stmt(module: &Module, stmt: &Stmt, seq: bool, level: usize, out: &mut String) {
    let assign_op = if seq { "<=" } else { "=" };
    match &stmt.kind {
        StmtKind::Assign { lhs, rhs } => {
            indent(out, level);
            let _ = write!(out, "{} {assign_op} ", module.signal(*lhs).name());
            print_expr(module, rhs, 0, out);
            out.push_str(";\n");
        }
        StmtKind::If {
            cond,
            then_body,
            else_body,
        } => {
            indent(out, level);
            out.push_str("if (");
            print_expr(module, cond, 0, out);
            out.push_str(") begin\n");
            for s in then_body {
                print_stmt(module, s, seq, level + 1, out);
            }
            indent(out, level);
            out.push_str("end");
            if else_body.is_empty() {
                out.push('\n');
            } else {
                out.push_str(" else begin\n");
                for s in else_body {
                    print_stmt(module, s, seq, level + 1, out);
                }
                indent(out, level);
                out.push_str("end\n");
            }
        }
        StmtKind::Case {
            subject,
            arms,
            default,
        } => {
            indent(out, level);
            out.push_str("case (");
            print_expr(module, subject, 0, out);
            out.push_str(")\n");
            for arm in arms {
                indent(out, level + 1);
                let labels: Vec<String> = arm
                    .labels
                    .iter()
                    .map(|l| format!("{}'d{}", l.width(), l.bits()))
                    .collect();
                let _ = writeln!(out, "{}: begin", labels.join(", "));
                for s in &arm.body {
                    print_stmt(module, s, seq, level + 2, out);
                }
                indent(out, level + 1);
                out.push_str("end\n");
            }
            if let Some(d) = default {
                indent(out, level + 1);
                out.push_str("default: begin\n");
                for s in d {
                    print_stmt(module, s, seq, level + 2, out);
                }
                indent(out, level + 1);
                out.push_str("end\n");
            }
            indent(out, level);
            out.push_str("endcase\n");
        }
    }
}

/// Renders `module` as Verilog-subset source.
///
/// The output parses back ([`crate::parse_verilog`]) into a behaviorally
/// equivalent module: same ports, same state elements, same cycle
/// semantics. Statement ids are not preserved (they are reassigned on
/// reparse in the same order).
///
/// # Examples
///
/// ```
/// let m = gm_rtl::parse_verilog(
///     "module inv(input a, output y); assign y = ~a; endmodule")?;
/// let src = gm_rtl::to_verilog(&m);
/// let again = gm_rtl::parse_verilog(&src)?;
/// assert_eq!(again.name(), "inv");
/// # Ok::<(), gm_rtl::RtlError>(())
/// ```
pub fn to_verilog(module: &Module) -> String {
    let mut out = String::new();
    // Header with ANSI ports.
    let _ = write!(out, "module {}(", module.name());
    let mut first = true;
    let seq_writes: Vec<SignalId> = module.state_signals();
    for sig in module.signal_ids() {
        let s = module.signal(sig);
        let dir = match s.kind() {
            SignalKind::Input => "input",
            SignalKind::Output => "output",
            _ => continue,
        };
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(dir);
        if s.kind() == SignalKind::Output && seq_writes.contains(&sig) {
            out.push_str(" reg");
        }
        if s.width() > 1 {
            let _ = write!(out, " [{}:0]", s.width() - 1);
        }
        let _ = write!(out, " {}", s.name());
    }
    out.push_str(");\n");

    // Internal declarations.
    for sig in module.signal_ids() {
        let s = module.signal(sig);
        let kind = match s.kind() {
            SignalKind::Wire => "wire",
            SignalKind::Reg => "reg",
            _ => continue,
        };
        indent(&mut out, 1);
        out.push_str(kind);
        if s.width() > 1 {
            let _ = write!(out, " [{}:0]", s.width() - 1);
        }
        let _ = writeln!(out, " {};", s.name());
    }

    // Processes.
    for p in module.processes() {
        match p.kind {
            ProcessKind::Comb => {
                // Single plain assignment prints as a continuous assign.
                if p.body.len() == 1 {
                    if let StmtKind::Assign { lhs, rhs } = &p.body[0].kind {
                        indent(&mut out, 1);
                        let _ = write!(out, "assign {} = ", module.signal(*lhs).name());
                        print_expr(module, rhs, 0, &mut out);
                        out.push_str(";\n");
                        continue;
                    }
                }
                indent(&mut out, 1);
                out.push_str("always @(*) begin\n");
                for s in &p.body {
                    print_stmt(module, s, false, 2, &mut out);
                }
                indent(&mut out, 1);
                out.push_str("end\n");
            }
            ProcessKind::Seq => {
                indent(&mut out, 1);
                let clk = module
                    .clock()
                    .map(|c| module.signal(c).name().to_string())
                    .unwrap_or_else(|| "clk".to_string());
                let _ = writeln!(out, "always @(posedge {clk}) begin");
                for s in &p.body {
                    print_stmt(module, s, true, 2, &mut out);
                }
                indent(&mut out, 1);
                out.push_str("end\n");
            }
        }
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_verilog;

    #[test]
    fn simple_roundtrip() {
        let src = "module m(input a, input [3:0] b, output y);
                     assign y = a & b[2] | ^b[3:1];
                   endmodule";
        let m = parse_verilog(src).unwrap();
        let printed = to_verilog(&m);
        let again = parse_verilog(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(again.name(), "m");
        assert_eq!(again.signals().len(), m.signals().len());
    }

    #[test]
    fn precedence_survives_roundtrip() {
        // a | b & c must NOT become (a | b) & c.
        let src = "module m(input a, input b, input c, output y, output z);
                     assign y = a | b & c;
                     assign z = (a | b) & c;
                   endmodule";
        let m = parse_verilog(src).unwrap();
        let printed = to_verilog(&m);
        let again = parse_verilog(&printed).unwrap();
        // Evaluate both y expressions at a=1,b=0,c=0: y=1, z=0.
        let eval = |m: &Module, name: &str| {
            let mut sim_vals = vec![crate::Bv::zero_bit(); m.signals().len()];
            sim_vals[m.require("a").unwrap().index()] = crate::Bv::one_bit();
            for p in m.processes() {
                for st in &p.body {
                    if let StmtKind::Assign { lhs, rhs } = &st.kind {
                        let v = rhs.eval(&|s: SignalId| sim_vals[s.index()]);
                        sim_vals[lhs.index()] = v;
                    }
                }
            }
            sim_vals[m.require(name).unwrap().index()]
        };
        assert_eq!(eval(&again, "y"), crate::Bv::one_bit(), "{printed}");
        assert_eq!(eval(&again, "z"), crate::Bv::zero_bit(), "{printed}");
    }

    #[test]
    fn sequential_module_roundtrips_with_state() {
        let src = "module m(input clk, input rst, input d, output reg [1:0] q);
                     reg [1:0] shadow;
                     always @(posedge clk)
                       if (rst) begin q <= 2'd2; shadow <= 0; end
                       else begin
                         case (shadow)
                           2'd0: begin q <= {q[0], d}; shadow <= 2'd1; end
                           2'd1, 2'd2: begin q <= q; shadow <= 2'd3; end
                           default: begin q <= 0; shadow <= 0; end
                         endcase
                       end
                   endmodule";
        let m = parse_verilog(src).unwrap();
        let printed = to_verilog(&m);
        let again = parse_verilog(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        crate::elaborate(&again).unwrap();
        assert_eq!(again.state_signals().len(), 2);
        let q = again.require("q").unwrap();
        assert_eq!(
            again.signal(q).init(),
            crate::Bv::new(2, 2),
            "init survives"
        );
    }
}
