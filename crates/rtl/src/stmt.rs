//! Behavioral statements and processes.
//!
//! A [`Process`] is either combinational (`always @(*)` / continuous
//! `assign`, blocking semantics) or sequential (`always @(posedge clk)`,
//! non-blocking semantics). Its body is a tree of [`Stmt`]s.

use crate::bv::Bv;
use crate::expr::Expr;
use crate::module::SignalId;

/// A stable identifier for a statement within one module.
///
/// Ids are assigned densely by the [`crate::ModuleBuilder`] and are used as
/// keys for line/branch coverage points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub(crate) u32);

impl StmtId {
    /// The raw index of this statement id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a statement id from a raw index (for table reconstruction).
    pub fn from_raw(raw: u32) -> Self {
        StmtId(raw)
    }
}

/// One arm of a `case` statement.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseArm {
    /// The constant labels that select this arm (`2'b00, 2'b01: ...`).
    pub labels: Vec<Bv>,
    /// The statements executed when a label matches.
    pub body: Vec<Stmt>,
}

/// A behavioral statement.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// The module-unique id of this statement.
    pub id: StmtId,
    /// The statement payload.
    pub kind: StmtKind,
}

/// Statement payloads.
#[derive(Clone, Debug, PartialEq)]
pub enum StmtKind {
    /// An assignment `lhs = rhs` (blocking in combinational processes,
    /// non-blocking in sequential processes).
    Assign {
        /// The assigned signal. Whole-signal assignment only.
        lhs: SignalId,
        /// The assigned value.
        rhs: Expr,
    },
    /// An `if (cond) ... else ...` statement.
    If {
        /// Branch condition; nonzero takes the `then` body.
        cond: Expr,
        /// Statements of the taken branch.
        then_body: Vec<Stmt>,
        /// Statements of the else branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// A `case (subject) ... endcase` statement.
    Case {
        /// The discriminating expression.
        subject: Expr,
        /// Arms in source order; the first label match wins.
        arms: Vec<CaseArm>,
        /// The `default:` body, if present.
        default: Option<Vec<Stmt>>,
    },
}

impl Stmt {
    /// Visits this statement and all nested statements, pre-order.
    pub fn for_each(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match &self.kind {
            StmtKind::Assign { .. } => {}
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                for s in then_body.iter().chain(else_body) {
                    s.for_each(f);
                }
            }
            StmtKind::Case { arms, default, .. } => {
                for arm in arms {
                    for s in &arm.body {
                        s.for_each(f);
                    }
                }
                if let Some(d) = default {
                    for s in d {
                        s.for_each(f);
                    }
                }
            }
        }
    }

    /// Signals read by this statement (conditions and right-hand sides),
    /// including nested statements.
    pub fn reads(&self, out: &mut Vec<SignalId>) {
        self.for_each(&mut |s| {
            let expr: Option<&Expr> = match &s.kind {
                StmtKind::Assign { rhs, .. } => Some(rhs),
                StmtKind::If { cond, .. } => Some(cond),
                StmtKind::Case { subject, .. } => Some(subject),
            };
            if let Some(e) = expr {
                e.for_each_signal(&mut |sig| out.push(sig));
            }
        });
    }

    /// Signals written by this statement, including nested statements.
    pub fn writes(&self, out: &mut Vec<SignalId>) {
        self.for_each(&mut |s| {
            if let StmtKind::Assign { lhs, .. } = &s.kind {
                out.push(*lhs);
            }
        });
    }
}

/// Process scheduling class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProcessKind {
    /// Combinational: evaluated whenever inputs change (modeled as every
    /// cycle, in topological order), with blocking assignment semantics.
    Comb,
    /// Sequential: evaluated at the clock edge with non-blocking semantics;
    /// all right-hand sides see pre-edge values.
    Seq,
}

/// A behavioral process: an `always` block or a continuous assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct Process {
    /// Scheduling class of the process.
    pub kind: ProcessKind,
    /// The statement list executed by the process.
    pub body: Vec<Stmt>,
}

impl Process {
    /// All signals read anywhere in the process body (sorted, deduped).
    pub fn read_set(&self) -> Vec<SignalId> {
        let mut v = Vec::new();
        for s in &self.body {
            s.reads(&mut v);
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    /// All signals written anywhere in the process body (sorted, deduped).
    pub fn write_set(&self) -> Vec<SignalId> {
        let mut v = Vec::new();
        for s in &self.body {
            s.writes(&mut v);
        }
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Visits every statement in the body, pre-order.
    pub fn for_each_stmt(&self, f: &mut impl FnMut(&Stmt)) {
        for s in &self.body {
            s.for_each(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn sid(n: u32) -> SignalId {
        SignalId::from_raw(n)
    }

    fn assign(id: u32, lhs: u32, rhs: Expr) -> Stmt {
        Stmt {
            id: StmtId(id),
            kind: StmtKind::Assign { lhs: sid(lhs), rhs },
        }
    }

    #[test]
    fn read_write_sets() {
        let p = Process {
            kind: ProcessKind::Comb,
            body: vec![Stmt {
                id: StmtId(0),
                kind: StmtKind::If {
                    cond: Expr::Signal(sid(0)),
                    then_body: vec![assign(1, 3, Expr::Signal(sid(1)))],
                    else_body: vec![assign(2, 3, Expr::Signal(sid(2)))],
                },
            }],
        };
        assert_eq!(p.read_set(), vec![sid(0), sid(1), sid(2)]);
        assert_eq!(p.write_set(), vec![sid(3)]);
    }

    #[test]
    fn case_reads_subject_and_bodies() {
        let p = Process {
            kind: ProcessKind::Seq,
            body: vec![Stmt {
                id: StmtId(0),
                kind: StmtKind::Case {
                    subject: Expr::Signal(sid(5)),
                    arms: vec![CaseArm {
                        labels: vec![Bv::new(0, 2)],
                        body: vec![assign(1, 6, Expr::Signal(sid(7)))],
                    }],
                    default: Some(vec![assign(2, 6, Expr::zero())]),
                },
            }],
        };
        assert_eq!(p.read_set(), vec![sid(5), sid(7)]);
        assert_eq!(p.write_set(), vec![sid(6)]);
    }

    #[test]
    fn for_each_is_preorder() {
        let p = Process {
            kind: ProcessKind::Comb,
            body: vec![Stmt {
                id: StmtId(0),
                kind: StmtKind::If {
                    cond: Expr::one(),
                    then_body: vec![assign(1, 0, Expr::zero())],
                    else_body: vec![assign(2, 0, Expr::one())],
                },
            }],
        };
        let mut ids = Vec::new();
        p.for_each_stmt(&mut |s| ids.push(s.id.0));
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
