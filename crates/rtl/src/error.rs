//! Error types for RTL construction, parsing and elaboration.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced while building, parsing or elaborating a module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtlError {
    /// Syntax error from the Verilog-subset parser.
    Parse {
        /// 1-based source line.
        line: u32,
        /// 1-based source column.
        col: u32,
        /// Human-readable description.
        msg: String,
    },
    /// A referenced signal name does not exist in the module.
    UnknownSignal {
        /// The unresolved name.
        name: String,
    },
    /// A signal name was declared twice.
    DuplicateSignal {
        /// The clashing name.
        name: String,
    },
    /// A signal is assigned by more than one process.
    MultipleDrivers {
        /// The multiply-driven signal name.
        signal: String,
    },
    /// An input port appears on the left-hand side of an assignment.
    AssignToInput {
        /// The assigned input name.
        signal: String,
    },
    /// Combinational processes form a dependency cycle.
    CombLoop {
        /// Signal names participating in the cycle.
        cycle: Vec<String>,
    },
    /// A combinational process does not assign a signal on every path
    /// (which would infer a latch).
    IncompleteAssign {
        /// The signal that is only conditionally assigned.
        signal: String,
    },
    /// A combinational process reads a signal it drives before assigning it.
    ReadBeforeAssign {
        /// The offending signal name.
        signal: String,
    },
    /// A `wire`/input is assigned inside a sequential process, or some
    /// other storage-class violation.
    StorageClass {
        /// The offending signal name.
        signal: String,
        /// What went wrong.
        msg: String,
    },
    /// A structural width error (slice out of range, concat too wide, ...).
    Width {
        /// Description of the width violation.
        msg: String,
    },
    /// The module has no statements driving an output.
    UndrivenOutput {
        /// The floating output name.
        signal: String,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            RtlError::UnknownSignal { name } => write!(f, "unknown signal `{name}`"),
            RtlError::DuplicateSignal { name } => {
                write!(f, "signal `{name}` declared more than once")
            }
            RtlError::MultipleDrivers { signal } => {
                write!(f, "signal `{signal}` has multiple drivers")
            }
            RtlError::AssignToInput { signal } => {
                write!(f, "input `{signal}` cannot be assigned")
            }
            RtlError::CombLoop { cycle } => {
                write!(f, "combinational loop through {}", cycle.join(" -> "))
            }
            RtlError::IncompleteAssign { signal } => write!(
                f,
                "signal `{signal}` is not assigned on every path of its combinational process (latch inferred)"
            ),
            RtlError::ReadBeforeAssign { signal } => write!(
                f,
                "combinational process reads `{signal}` before assigning it"
            ),
            RtlError::StorageClass { signal, msg } => {
                write!(f, "storage class violation on `{signal}`: {msg}")
            }
            RtlError::Width { msg } => write!(f, "width error: {msg}"),
            RtlError::UndrivenOutput { signal } => {
                write!(f, "output `{signal}` has no driver")
            }
        }
    }
}

impl StdError for RtlError {}

/// Convenience alias for RTL results.
pub type Result<T> = std::result::Result<T, RtlError>;
