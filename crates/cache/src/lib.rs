//! # gm-cache — shared bounded-LRU primitives
//!
//! Both long-lived memo structures in the system — the model checker's
//! property memo (`gm_mc::Checker`) and the closure service's
//! content-addressed design cache (`gm_serve::DesignCache`) — bound
//! their footprint with least-recently-used eviction. They used to
//! carry two intentionally parallel copies of a stamp-based
//! implementation whose eviction was an O(capacity) min-stamp scan;
//! [`BoundedLru`] replaces both with one O(1) structure (hash map into
//! an intrusive doubly-linked recency list over a slab).
//!
//! The helper deliberately owns *only* the recency/eviction mechanics:
//! hit/miss/eviction counters and byte accounting stay with the
//! callers, which is why mutating operations hand evicted entries back
//! instead of dropping them.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel index for "no slot".
const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A map with O(1) insert/lookup/remove and O(1) least-recently-used
/// eviction. `get`/`get_mut`/`insert` refresh recency; `peek*` does
/// not.
///
/// # Examples
///
/// ```
/// use gm_cache::BoundedLru;
///
/// let mut lru = BoundedLru::with_capacity(2);
/// lru.insert("a", 1);
/// lru.insert("b", 2);
/// lru.get(&"a"); // refresh: "b" is now the LRU entry
/// lru.insert("c", 3);
/// let evicted = lru.pop_over_capacity().unwrap();
/// assert_eq!(evicted, ("b", 2));
/// assert!(lru.pop_over_capacity().is_none());
/// assert_eq!(lru.len(), 2);
/// ```
#[derive(Debug)]
pub struct BoundedLru<K, V> {
    map: HashMap<K, usize>,
    /// Slab of slots; `None` entries are on the free list.
    slots: Vec<Option<Slot<K, V>>>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    capacity: Option<usize>,
}

impl<K: Clone + Eq + Hash, V> Default for BoundedLru<K, V> {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl<K: Clone + Eq + Hash, V> BoundedLru<K, V> {
    /// An LRU with no capacity bound ([`BoundedLru::pop_over_capacity`]
    /// never yields).
    pub fn unbounded() -> Self {
        BoundedLru {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: None,
        }
    }

    /// An LRU bounded to `capacity` entries (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let mut lru = Self::unbounded();
        lru.capacity = Some(capacity.max(1));
        lru
    }

    /// Sets or clears the capacity bound. Shrinking does not evict by
    /// itself — drain [`BoundedLru::pop_over_capacity`] afterwards so
    /// the caller can account for each evicted entry.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity.map(|c| c.max(1));
    }

    /// The current capacity bound.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the LRU holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn slot(&self, i: usize) -> &Slot<K, V> {
        self.slots[i].as_ref().expect("linked slots are occupied")
    }

    fn slot_mut(&mut self, i: usize) -> &mut Slot<K, V> {
        self.slots[i].as_mut().expect("linked slots are occupied")
    }

    /// Unlinks a slot from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = {
            let s = self.slot(i);
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slot_mut(prev).next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slot_mut(next).prev = prev;
        }
    }

    /// Links a slot at the most-recently-used end.
    fn link_front(&mut self, i: usize) {
        let head = self.head;
        {
            let s = self.slot_mut(i);
            s.prev = NIL;
            s.next = head;
        }
        if head != NIL {
            self.slot_mut(head).prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.link_front(i);
        }
    }

    /// Looks a key up, refreshing its recency. Like [`HashMap::get`],
    /// any borrowed form of the key works (`&str` for `String` keys).
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let i = *self.map.get(key)?;
        self.touch(i);
        Some(&self.slot(i).value)
    }

    /// Looks a key up mutably, refreshing its recency.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let i = *self.map.get(key)?;
        self.touch(i);
        Some(&mut self.slot_mut(i).value)
    }

    /// Looks a key up without touching recency.
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.get(key).map(|&i| &self.slot(i).value)
    }

    /// Looks a key up mutably without touching recency.
    pub fn peek_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let i = *self.map.get(key)?;
        Some(&mut self.slot_mut(i).value)
    }

    /// Inserts (or replaces) an entry at the most-recently-used
    /// position, returning the replaced value for same-key inserts.
    /// Never evicts — drain [`BoundedLru::pop_over_capacity`] after
    /// inserting so the caller observes each eviction.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if let Some(&i) = self.map.get(&key) {
            self.touch(i);
            return Some(std::mem::replace(&mut self.slot_mut(i).value, value));
        }
        let slot = Slot {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.link_front(i);
        None
    }

    /// Removes an entry by key.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let i = self.map.remove(key)?;
        self.unlink(i);
        self.free.push(i);
        self.slots[i].take().map(|s| s.value)
    }

    /// Pops the least-recently-used entry while over capacity; `None`
    /// once within bounds (or unbounded).
    pub fn pop_over_capacity(&mut self) -> Option<(K, V)> {
        let cap = self.capacity?;
        if self.map.len() <= cap {
            return None;
        }
        self.pop_lru()
    }

    /// Pops the least-recently-used entry unconditionally.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let i = self.tail;
        self.unlink(i);
        self.free.push(i);
        let slot = self.slots[i].take().expect("tail slot is occupied");
        self.map.remove(&slot.key);
        Some((slot.key, slot.value))
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Iterates resident values in most-recently-used-first order.
    pub fn values(&self) -> Values<'_, K, V> {
        Values {
            lru: self,
            next: self.head,
        }
    }
}

/// Iterator over resident values, most recently used first.
#[derive(Debug)]
pub struct Values<'a, K, V> {
    lru: &'a BoundedLru<K, V>,
    next: usize,
}

impl<'a, K, V> Iterator for Values<'a, K, V> {
    type Item = &'a V;

    fn next(&mut self) -> Option<&'a V> {
        if self.next == NIL {
            return None;
        }
        let slot = self.lru.slots[self.next]
            .as_ref()
            .expect("linked slots are occupied");
        self.next = slot.next;
        Some(&slot.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_order_is_least_recently_used() {
        let mut lru = BoundedLru::with_capacity(3);
        for k in 0..3 {
            lru.insert(k, k * 10);
        }
        assert_eq!(lru.get(&0), Some(&0)); // order now 0, 2, 1
        lru.insert(3, 30);
        assert_eq!(lru.pop_over_capacity(), Some((1, 10)));
        assert_eq!(lru.pop_over_capacity(), None);
        lru.insert(4, 40);
        assert_eq!(lru.pop_over_capacity(), Some((2, 20)));
        let resident: Vec<i32> = lru.values().copied().collect();
        assert_eq!(resident, vec![40, 30, 0], "MRU-first order");
    }

    #[test]
    fn peek_does_not_refresh() {
        let mut lru = BoundedLru::with_capacity(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.peek(&"a"), Some(&1));
        lru.insert("c", 3);
        // "a" was peeked, not touched: still the LRU victim.
        assert_eq!(lru.pop_over_capacity(), Some(("a", 1)));
    }

    #[test]
    fn same_key_insert_replaces_and_refreshes() {
        let mut lru = BoundedLru::with_capacity(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert_eq!(lru.insert("a", 9), Some(1));
        lru.insert("c", 3);
        assert_eq!(lru.pop_over_capacity(), Some(("b", 2)));
        assert_eq!(lru.get(&"a"), Some(&9));
    }

    #[test]
    fn remove_and_slot_reuse() {
        let mut lru: BoundedLru<u32, String> = BoundedLru::unbounded();
        for k in 0..10 {
            lru.insert(k, format!("v{k}"));
        }
        assert_eq!(lru.remove(&5), Some("v5".to_string()));
        assert_eq!(lru.remove(&5), None);
        lru.insert(99, "v99".to_string());
        assert_eq!(lru.len(), 10);
        assert_eq!(lru.slots.len(), 10, "freed slot was reused");
        assert!(lru.pop_over_capacity().is_none(), "unbounded never evicts");
    }

    #[test]
    fn shrink_capacity_then_drain() {
        let mut lru = BoundedLru::unbounded();
        for k in 0..6 {
            lru.insert(k, k);
        }
        lru.set_capacity(Some(2));
        let mut evicted = Vec::new();
        while let Some((k, _)) = lru.pop_over_capacity() {
            evicted.push(k);
        }
        assert_eq!(evicted, vec![0, 1, 2, 3], "oldest first");
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn clear_resets_everything() {
        let mut lru = BoundedLru::with_capacity(4);
        for k in 0..4 {
            lru.insert(k, k);
        }
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.values().count(), 0);
        lru.insert(1, 1);
        assert_eq!(lru.pop_lru(), Some((1, 1)));
        assert_eq!(lru.pop_lru(), None);
    }
}
