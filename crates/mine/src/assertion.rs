//! Candidate assertions extracted from decision-tree leaves.
//!
//! A leaf with zero error is a 100%-confidence rule: the conjunction of
//! the (feature, value) pairs on its path implies the target value
//! (Definition 2 in the paper). Assertions render in LTL (the paper's
//! notation, e.g. `req0 & X req0 & X !req1 => X X gnt0`) and
//! SystemVerilog Assertion syntax.

use crate::features::{Feature, MiningSpec, Target};
use crate::tree::{DecisionTree, LeafStatus};
use gm_rtl::Module;

/// A mined candidate assertion for one output bit.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Assertion {
    /// Path literals: feature and required value, in root-to-leaf order.
    pub literals: Vec<(Feature, bool)>,
    /// The implied target.
    pub target: Target,
    /// The implied target value.
    pub value: bool,
}

/// Renders a signal bit as `name` or `name[bit]`. Shared by the
/// combinational and temporal renderers.
pub(crate) fn atom_name(module: &Module, signal: gm_rtl::SignalId, bit: u32) -> String {
    let sig = module.signal(signal);
    if sig.width() > 1 {
        format!("{}[{}]", sig.name(), bit)
    } else {
        sig.name().to_string()
    }
}

/// The LTL antecedent of a literal set: atoms prefixed with one `X` per
/// offset, offset-sorted, `&`-joined; `true` when empty.
pub(crate) fn ltl_antecedent(literals: &[(Feature, bool)], module: &Module) -> String {
    let mut atoms: Vec<String> = Vec::new();
    let mut sorted = literals.to_vec();
    sorted.sort_by_key(|(f, _)| (f.offset, f.signal, f.bit));
    for (f, v) in &sorted {
        let mut s = "X ".repeat(f.offset as usize);
        if !*v {
            s.push('!');
        }
        s.push_str(&atom_name(module, f.signal, f.bit));
        atoms.push(s);
    }
    if atoms.is_empty() {
        "true".to_string()
    } else {
        atoms.join(" & ")
    }
}

/// The PSL antecedent of a literal set: `next[k]`-nested atoms,
/// `&&`-joined; `true` when empty.
pub(crate) fn psl_antecedent(literals: &[(Feature, bool)], module: &Module) -> String {
    let mut sorted = literals.to_vec();
    sorted.sort_by_key(|(f, _)| (f.offset, f.signal, f.bit));
    let mut ant_parts: Vec<String> = Vec::new();
    for (f, v) in &sorted {
        let base = format!(
            "{}{}",
            if *v { "" } else { "!" },
            atom_name(module, f.signal, f.bit)
        );
        if f.offset == 0 {
            ant_parts.push(base);
        } else {
            ant_parts.push(format!("next[{}] ({base})", f.offset));
        }
    }
    if ant_parts.is_empty() {
        "true".to_string()
    } else {
        ant_parts.join(" && ")
    }
}

/// The SVA antecedent sequence of a literal set (offset-grouped atoms
/// with `##N` delays; `1` when empty) and the last offset it reaches —
/// the consequent's delay is measured from there.
pub(crate) fn sva_antecedent(literals: &[(Feature, bool)], module: &Module) -> (String, u32) {
    let mut by_offset: Vec<(u32, Vec<String>)> = Vec::new();
    let mut sorted = literals.to_vec();
    sorted.sort_by_key(|(f, _)| (f.offset, f.signal, f.bit));
    for (f, v) in &sorted {
        let name = format!(
            "{}{}",
            if *v { "" } else { "!" },
            atom_name(module, f.signal, f.bit)
        );
        match by_offset.iter_mut().find(|(o, _)| *o == f.offset) {
            Some((_, v)) => v.push(name),
            None => by_offset.push((f.offset, vec![name])),
        }
    }
    let mut seq = String::new();
    let mut last_offset = 0;
    if by_offset.is_empty() {
        seq.push('1');
    }
    for (i, (offset, names)) in by_offset.iter().enumerate() {
        if i > 0 {
            seq.push_str(&format!(" ##{} ", offset - last_offset));
        }
        seq.push_str(&names.join(" && "));
        last_offset = *offset;
    }
    (seq, last_offset)
}

/// The clock name used in SVA renderings (`clk` when the design has no
/// identified clock).
pub(crate) fn sva_clock(module: &Module) -> String {
    module
        .clock()
        .map(|c| module.signal(c).name().to_string())
        .unwrap_or_else(|| "clk".to_string())
}

impl Assertion {
    /// The fraction of the *input* space this assertion covers:
    /// `2^-(number of input literals)` — the paper's §7.1 formula, where
    /// non-input (state) literals do not shrink the input share.
    pub fn input_space_fraction(&self, module: &Module) -> f64 {
        let input_literals = self
            .literals
            .iter()
            .filter(|(f, _)| module.signal(f.signal).is_input())
            .count();
        0.5f64.powi(input_literals as i32)
    }

    /// Renders the assertion in the paper's LTL notation: literals
    /// prefixed with one `X` per cycle offset, e.g.
    /// `req0 & X !req1 => X X gnt0`.
    pub fn to_ltl(&self, module: &Module) -> String {
        let ant = ltl_antecedent(&self.literals, module);
        let mut cons = "X ".repeat(self.target.offset as usize);
        if !self.value {
            cons.push('!');
        }
        cons.push_str(&atom_name(module, self.target.signal, self.target.bit));
        format!("{ant} => {cons}")
    }

    /// Renders the assertion as a PSL property (the paper's other output
    /// format): `always (ant -> next[k] (cons))` with `next`-nested
    /// antecedent stages.
    pub fn to_psl(&self, module: &Module) -> String {
        let ant = psl_antecedent(&self.literals, module);
        let cons_base = format!(
            "{}{}",
            if self.value { "" } else { "!" },
            atom_name(module, self.target.signal, self.target.bit)
        );
        let cons = if self.target.offset == 0 {
            cons_base
        } else {
            format!("next[{}] ({cons_base})", self.target.offset)
        };
        format!("always (({ant}) -> {cons});")
    }

    /// Renders the assertion as a SystemVerilog property, using `##N`
    /// cycle delays between offsets.
    pub fn to_sva(&self, module: &Module) -> String {
        let (seq, last_offset) = sva_antecedent(&self.literals, module);
        let clock = sva_clock(module);
        let delay = self.target.offset.saturating_sub(last_offset);
        let cons = format!(
            "{}{}",
            if self.value { "" } else { "!" },
            atom_name(module, self.target.signal, self.target.bit)
        );
        format!("@(posedge {clock}) {seq} |-> ##{delay} {cons};")
    }
}

/// Extracts the assertion at a (pure) leaf of the tree.
pub fn assertion_at(tree: &DecisionTree, spec: &MiningSpec, leaf: usize) -> Assertion {
    let literals = tree
        .path(leaf)
        .into_iter()
        .map(|(f, v)| (spec.features[f], v))
        .collect();
    Assertion {
        literals,
        target: spec.target,
        value: tree.node(leaf).prediction(),
    }
}

/// All candidate assertions at open (unproved) leaves.
pub fn open_candidates(tree: &DecisionTree, spec: &MiningSpec) -> Vec<(usize, Assertion)> {
    tree.leaves()
        .into_iter()
        .filter(|&l| tree.leaf_status(l) == LeafStatus::Open)
        .map(|l| (l, assertion_at(tree, spec, l)))
        .collect()
}

/// All assertions at proved leaves.
pub fn proved_assertions(tree: &DecisionTree, spec: &MiningSpec) -> Vec<Assertion> {
    tree.leaves()
        .into_iter()
        .filter(|&l| tree.leaf_status(l) == LeafStatus::Proved)
        .map(|l| assertion_at(tree, spec, l))
        .collect()
}

/// The input-literal cube of one assertion: its path literals projected
/// onto the input signals. `None` when the projection is contradictory
/// (the same input atom required both `0` and `1`), i.e. an empty cube.
fn input_cube(a: &Assertion, module: &Module) -> Option<Vec<(Feature, bool)>> {
    let mut cube: Vec<(Feature, bool)> = Vec::new();
    for &(f, v) in &a.literals {
        if !module.signal(f.signal).is_input() {
            continue;
        }
        match cube.iter().find(|(g, _)| *g == f) {
            Some(&(_, prev)) if prev != v => return None,
            Some(_) => {}
            None => cube.push((f, v)),
        }
    }
    Some(cube)
}

/// The exact measure of a union of cubes over uniformly random inputs,
/// by Shannon expansion: pick a variable some cube tests, split on it,
/// and recurse on the co-factored cube sets. Exponential only in the
/// number of *distinct* variables the overlapping cubes share — leaf
/// cubes of one tree are near-disjoint, so the recursion collapses
/// almost immediately in practice.
fn union_measure(cubes: &[Vec<(Feature, bool)>]) -> f64 {
    if cubes.is_empty() {
        return 0.0;
    }
    if cubes.iter().any(Vec::is_empty) {
        // An unconditional cube covers the whole space.
        return 1.0;
    }
    let var = cubes[0][0].0;
    let cofactor = |val: bool| -> Vec<Vec<(Feature, bool)>> {
        cubes
            .iter()
            .filter_map(|c| {
                let mut rest = Vec::with_capacity(c.len());
                for &(f, v) in c {
                    if f == var {
                        if v != val {
                            return None;
                        }
                    } else {
                        rest.push((f, v));
                    }
                }
                Some(rest)
            })
            .collect()
    };
    0.5 * union_measure(&cofactor(false)) + 0.5 * union_measure(&cofactor(true))
}

/// The paper's input-space coverage of a set of true assertions,
/// counting only input literals. Reaches 1.0 exactly at convergence.
///
/// Computed as the *exact union measure* of the input-literal cubes.
/// The leaves of one tree are disjoint over their full literal sets,
/// but projecting away state literals (the §6 extension move) can make
/// two input cubes overlap — a naive `Σ 2^-depth` then double-counts
/// the shared mass, and clamping the sum at 1.0 masquerades as exact
/// convergence. Use [`input_space_overlap`] to see how much mass a set
/// double-counts.
pub fn input_space_coverage(assertions: &[Assertion], module: &Module) -> f64 {
    let cubes: Vec<_> = assertions
        .iter()
        .filter_map(|a| input_cube(a, module))
        .collect();
    let union = union_measure(&cubes);
    debug_assert!(
        (0.0..=1.0 + 1e-12).contains(&union),
        "union measure must be a probability, got {union}"
    );
    union.min(1.0)
}

/// The input-space mass an assertion set double-counts: the per-cube
/// sum minus the exact union. Zero for a disjoint set; positive when
/// state-literal projection made leaf cubes overlap (the case the old
/// clamped sum silently hid).
pub fn input_space_overlap(assertions: &[Assertion], module: &Module) -> f64 {
    let cubes: Vec<_> = assertions
        .iter()
        .filter_map(|a| input_cube(a, module))
        .collect();
    let sum: f64 = cubes.iter().map(|c| 0.5f64.powi(c.len() as i32)).sum();
    (sum - union_measure(&cubes)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_rtl::{parse_verilog, SignalId};

    fn arbiter() -> gm_rtl::Module {
        parse_verilog(
            "module arbiter2(input clk, input rst, input req0, input req1,
                             output reg gnt0, output reg gnt1);
               always @(posedge clk)
                 if (rst) begin gnt0 <= 0; gnt1 <= 0; end
                 else begin
                   gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
                   gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
                 end
             endmodule",
        )
        .unwrap()
    }

    fn feat(m: &gm_rtl::Module, name: &str, offset: u32) -> Feature {
        Feature {
            signal: m.require(name).unwrap(),
            bit: 0,
            offset,
        }
    }

    /// The paper's A2: !req0 & X req0 => X X gnt0.
    fn a3(m: &gm_rtl::Module) -> Assertion {
        Assertion {
            literals: vec![(feat(m, "req0", 0), false), (feat(m, "req0", 1), true)],
            target: Target {
                signal: m.require("gnt0").unwrap(),
                bit: 0,
                offset: 2,
            },
            value: true,
        }
    }

    #[test]
    fn ltl_rendering_matches_paper_notation() {
        let m = arbiter();
        assert_eq!(a3(&m).to_ltl(&m), "!req0 & X req0 => X X gnt0");
    }

    #[test]
    fn psl_rendering_uses_next_operators() {
        let m = arbiter();
        assert_eq!(
            a3(&m).to_psl(&m),
            "always ((!req0 && next[1] (req0)) -> next[2] (gnt0));"
        );
        let empty = Assertion {
            literals: vec![],
            target: Target {
                signal: m.require("gnt0").unwrap(),
                bit: 0,
                offset: 0,
            },
            value: false,
        };
        assert_eq!(empty.to_psl(&m), "always ((true) -> !gnt0);");
    }

    #[test]
    fn sva_rendering_uses_cycle_delays() {
        let m = arbiter();
        assert_eq!(
            a3(&m).to_sva(&m),
            "@(posedge clk) !req0 ##1 req0 |-> ##1 gnt0;"
        );
    }

    #[test]
    fn empty_antecedent_renders_true() {
        let m = arbiter();
        let a = Assertion {
            literals: vec![],
            target: Target {
                signal: m.require("gnt0").unwrap(),
                bit: 0,
                offset: 0,
            },
            value: false,
        };
        assert_eq!(a.to_ltl(&m), "true => !gnt0");
        assert_eq!(a.to_sva(&m), "@(posedge clk) 1 |-> ##0 !gnt0;");
    }

    #[test]
    fn input_space_counts_only_input_literals() {
        let m = arbiter();
        let mut a = a3(&m);
        assert_eq!(a.input_space_fraction(&m), 0.25);
        // Adding a state literal (gnt0@0) does not shrink the share.
        a.literals.push((feat(&m, "gnt0", 0), true));
        assert_eq!(a.input_space_fraction(&m), 0.25);
        // `a` and `b` project to the *same* input cube (they differ
        // only in the state literal), so the union is one cube's 0.25
        // — the old clamped sum reported 0.5.
        let b = a3(&m);
        assert_eq!(input_space_coverage(&[a.clone(), b.clone()], &m), 0.25);
        assert_eq!(input_space_overlap(&[a, b], &m), 0.25);
    }

    #[test]
    fn overlapping_cubes_no_longer_masquerade_as_convergence() {
        let m = arbiter();
        // Four assertions over req0/req1 cubes that pairwise overlap:
        // req0, !req0, and req1 — the plain sum is 0.5 + 0.5 + 0.5 =
        // 1.5, which the old `.min(1.0)` clamp reported as exact
        // convergence. The true union is req0 | !req0 | req1 = 1.0
        // only because req0/!req0 partition the space; dropping one
        // of them must drop the union below 1.0 even though the sum
        // still reads 1.0.
        let mk = |name: &str, value: bool| Assertion {
            literals: vec![(feat(&m, name, 0), value)],
            target: Target {
                signal: m.require("gnt0").unwrap(),
                bit: 0,
                offset: 1,
            },
            value: true,
        };
        let full = [mk("req0", true), mk("req0", false), mk("req1", true)];
        assert_eq!(input_space_coverage(&full, &m), 1.0);
        assert!((input_space_overlap(&full, &m) - 0.5).abs() < 1e-12);
        // req0 ∪ req1: sum = 1.0 (the clamp's fake convergence), union
        // = 0.75.
        let partial = [mk("req0", true), mk("req1", true)];
        assert_eq!(input_space_coverage(&partial, &m), 0.75);
        assert!((input_space_overlap(&partial, &m) - 0.25).abs() < 1e-12);
        // A contradictory projection is an empty cube: measure zero.
        let mut contradictory = mk("req0", true);
        contradictory.literals.push((feat(&m, "req0", 0), false));
        assert_eq!(input_space_coverage(&[contradictory], &m), 0.0);
    }

    #[test]
    fn multibit_atoms_show_bit_indices() {
        let m = parse_verilog(
            "module m(input clk, input [1:0] s, output reg y);
               always @(posedge clk) y <= s[0] & s[1];
             endmodule",
        )
        .unwrap();
        let a = Assertion {
            literals: vec![(
                Feature {
                    signal: m.require("s").unwrap(),
                    bit: 1,
                    offset: 0,
                },
                true,
            )],
            target: Target {
                signal: m.require("y").unwrap(),
                bit: 0,
                offset: 1,
            },
            value: false,
        };
        assert_eq!(a.to_ltl(&m), "s[1] => X !y");
        let _ = SignalId::from_raw(0);
    }
}
