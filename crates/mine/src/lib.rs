//! # gm-mine — decision-tree assertion mining
//!
//! The paper's **A-Miner**: learns candidate assertions from simulation
//! traces with an incremental decision tree.
//!
//! * [`MiningSpec`] defines the feature universe for one output bit —
//!   cone inputs across the mining window, with state registers at the
//!   farthest-back offset as *extension* candidates (activated only when
//!   the window cannot explain the output, the paper's §6 move);
//! * [`Dataset`] extracts windowed rows from [`gm_sim::Trace`]s;
//! * [`DecisionTree`] is the incremental tree of §3: strict-improvement
//!   variance splits (100% confidence), counterexample rows re-split
//!   only the refuted leaf while everything above is preserved
//!   (Definition 6);
//! * [`Assertion`] renders leaves in LTL / SVA form and carries the
//!   paper's `2^-depth` input-space accounting.

#![warn(missing_docs)]

mod assertion;
mod dataset;
mod features;
mod temporal;
mod tree;

pub use assertion::{
    assertion_at, input_space_coverage, input_space_overlap, open_candidates, proved_assertions,
    Assertion,
};
pub use dataset::{Dataset, ExtractedRows, Row};
pub use features::{Feature, MiningSpec, Target};
pub use temporal::{temporal_candidates, TemporalAssertion, TemporalTemplate};
pub use tree::{DecisionTree, LeafStatus, MineError, Node};
