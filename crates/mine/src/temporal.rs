//! Temporal assertion templates mined from post-window target values.
//!
//! The combinational miner (the 2011 paper's frontier) relates a
//! window of features to the target *at one cycle*. The templates here
//! — drawn from the assertion-mining survey's temporal taxonomy —
//! extend a leaf's cube forward in time:
//!
//! * **Next-cycle implication** `a -> X^j b`: an impure leaf whose
//!   rows disagree *now* but all agree `j` cycles later;
//! * **Bounded eventuality** `a -> F<=k b`: every row reaches the
//!   value within `k` cycles of the target cycle;
//! * **Stability window** `a -> G<=k b`: a pure leaf whose value also
//!   holds for the next `k` cycles.
//!
//! Candidates are proposed from the per-row lookahead a
//! [`Dataset::with_horizon`] records (no re-simulation), rendered in
//! LTL / PSL / SVA like combinational assertions, and checked by the
//! BMC / k-induction backend as bounded safety properties.

use crate::assertion::{atom_name, ltl_antecedent, psl_antecedent, sva_antecedent, sva_clock};
use crate::dataset::Dataset;
use crate::features::{Feature, MiningSpec, Target};
use crate::tree::DecisionTree;
use gm_rtl::Module;

/// The temporal shape of a mined assertion, relative to the target's
/// window offset `d`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TemporalTemplate {
    /// `a -> X^shift b`: the value is implied `shift` cycles after the
    /// target cycle (`shift >= 1`).
    Next {
        /// Cycles past the target cycle.
        shift: u32,
    },
    /// `a -> F<=bound b`: the value is reached at the target cycle or
    /// within `bound` cycles after it (`bound >= 1`).
    Eventually {
        /// The eventuality window length.
        bound: u32,
    },
    /// `a -> G<=bound b`: the value holds at the target cycle and for
    /// `bound` cycles after it (`bound >= 1`).
    Stability {
        /// The stability window length.
        bound: u32,
    },
}

/// A mined temporal candidate assertion for one output bit.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TemporalAssertion {
    /// Path literals: feature and required value, in root-to-leaf order.
    pub literals: Vec<(Feature, bool)>,
    /// The implied target.
    pub target: Target,
    /// The implied target value.
    pub value: bool,
    /// The temporal shape.
    pub template: TemporalTemplate,
}

impl TemporalAssertion {
    /// The cycle offsets (relative to the window start) the consequent
    /// ranges over.
    pub fn consequent_offsets(&self) -> std::ops::RangeInclusive<u32> {
        let d = self.target.offset;
        match self.template {
            TemporalTemplate::Next { shift } => (d + shift)..=(d + shift),
            TemporalTemplate::Eventually { bound } | TemporalTemplate::Stability { bound } => {
                d..=(d + bound)
            }
        }
    }

    /// Renders the assertion in bounded-LTL notation:
    /// `ant => X^d F<=k cons` / `X^d G<=k cons` / `X^(d+j) cons`.
    pub fn to_ltl(&self, module: &Module) -> String {
        let ant = ltl_antecedent(&self.literals, module);
        let name = atom_name(module, self.target.signal, self.target.bit);
        let lit = format!("{}{}", if self.value { "" } else { "!" }, name);
        let cons = match self.template {
            TemporalTemplate::Next { shift } => {
                let x = "X ".repeat((self.target.offset + shift) as usize);
                format!("{x}{lit}")
            }
            TemporalTemplate::Eventually { bound } => {
                let x = "X ".repeat(self.target.offset as usize);
                format!("{x}F<={bound} {lit}")
            }
            TemporalTemplate::Stability { bound } => {
                let x = "X ".repeat(self.target.offset as usize);
                format!("{x}G<={bound} {lit}")
            }
        };
        format!("{ant} => {cons}")
    }

    /// Renders the assertion as a PSL property, using `next[j]` /
    /// `next_e[d..e]` (exists) / `next_a[d..e]` (all) operators.
    pub fn to_psl(&self, module: &Module) -> String {
        let ant = psl_antecedent(&self.literals, module);
        let name = atom_name(module, self.target.signal, self.target.bit);
        let lit = format!("{}{}", if self.value { "" } else { "!" }, name);
        let d = self.target.offset;
        let cons = match self.template {
            TemporalTemplate::Next { shift } => format!("next[{}] ({lit})", d + shift),
            TemporalTemplate::Eventually { bound } => {
                format!("next_e[{d}..{}] ({lit})", d + bound)
            }
            TemporalTemplate::Stability { bound } => {
                format!("next_a[{d}..{}] ({lit})", d + bound)
            }
        };
        format!("always (({ant}) -> {cons});")
    }

    /// Renders the assertion as a SystemVerilog property: `##[d:e]`
    /// delay ranges for eventualities, `[*n]` consecutive repetition
    /// for stability windows.
    pub fn to_sva(&self, module: &Module) -> String {
        let (seq, last_offset) = sva_antecedent(&self.literals, module);
        let clock = sva_clock(module);
        let name = atom_name(module, self.target.signal, self.target.bit);
        let lit = format!("{}{}", if self.value { "" } else { "!" }, name);
        let d = self.target.offset;
        let cons = match self.template {
            TemporalTemplate::Next { shift } => {
                let delay = (d + shift).saturating_sub(last_offset);
                format!("##{delay} {lit}")
            }
            TemporalTemplate::Eventually { bound } => {
                let lo = d.saturating_sub(last_offset);
                format!("##[{lo}:{}] {lit}", lo + bound)
            }
            TemporalTemplate::Stability { bound } => {
                let delay = d.saturating_sub(last_offset);
                format!("##{delay} {lit} [*{}]", bound + 1)
            }
        };
        format!("@(posedge {clock}) {seq} |-> {cons};")
    }
}

/// Builds the temporal assertion at one leaf with the given template.
fn assertion_with(
    tree: &DecisionTree,
    spec: &MiningSpec,
    leaf: usize,
    value: bool,
    template: TemporalTemplate,
) -> TemporalAssertion {
    let literals = tree
        .path(leaf)
        .into_iter()
        .map(|(f, v)| (spec.features[f], v))
        .collect();
    TemporalAssertion {
        literals,
        target: spec.target,
        value,
        template,
    }
}

/// Whether every row in `rows` has a *conclusive* value `shift` cycles
/// past its target cycle, and those values all equal `Some(v)`; rows
/// whose trace ended before the shift make the claim inconclusive.
fn agreed_future(data: &Dataset, rows: &[u32], shift: usize) -> Option<bool> {
    let mut agreed: Option<bool> = None;
    for &r in rows {
        let future = data.future_of(r as usize);
        let v = *future.get(shift - 1)?;
        match agreed {
            None => agreed = Some(v),
            Some(a) if a != v => return None,
            Some(_) => {}
        }
    }
    agreed
}

/// Proposes temporal candidates from the current leaves of a fitted
/// tree, reading post-window target values from the dataset's horizon
/// lookahead ([`Dataset::with_horizon`]).
///
/// Per leaf (in deterministic index order):
///
/// * **impure leaf** — the combinational miner is stuck *now*, so look
///   forward: the smallest shift where all rows agree yields a
///   [`TemporalTemplate::Next`] candidate, and for each value present,
///   the smallest bound within which every row reaches it yields a
///   [`TemporalTemplate::Eventually`] candidate;
/// * **pure leaf** — the value is already implied at the target cycle,
///   so the largest bound through which every row *holds* it yields a
///   [`TemporalTemplate::Stability`] candidate.
///
/// Returns `(leaf, assertion)` pairs; empty when the dataset records
/// no horizon. Candidates are proposals — like combinational
/// candidates they must be proved by the model checker before being
/// reported.
pub fn temporal_candidates(
    tree: &DecisionTree,
    spec: &MiningSpec,
    data: &Dataset,
) -> Vec<(usize, TemporalAssertion)> {
    let horizon = data.horizon() as usize;
    let mut out = Vec::new();
    if horizon == 0 {
        return out;
    }
    for leaf in tree.leaves() {
        let rows = tree.node_rows(leaf);
        if rows.is_empty() {
            continue;
        }
        if tree.is_pure(leaf) {
            let value = tree.node(leaf).prediction();
            // Stability: the longest prefix of the horizon through
            // which every row keeps the leaf's value.
            let mut bound = 0;
            for k in 1..=horizon {
                if agreed_future(data, rows, k) == Some(value) {
                    bound = k;
                } else {
                    break;
                }
            }
            if bound >= 1 {
                out.push((
                    leaf,
                    assertion_with(
                        tree,
                        spec,
                        leaf,
                        value,
                        TemporalTemplate::Stability {
                            bound: bound as u32,
                        },
                    ),
                ));
            }
        } else {
            // Next: the smallest shift where the rows agree again.
            if let Some((shift, value)) =
                (1..=horizon).find_map(|j| agreed_future(data, rows, j).map(|v| (j, v)))
            {
                out.push((
                    leaf,
                    assertion_with(
                        tree,
                        spec,
                        leaf,
                        value,
                        TemporalTemplate::Next {
                            shift: shift as u32,
                        },
                    ),
                ));
            }
            // Eventually: for each value, the smallest bound within
            // which every row reaches it (conclusively).
            for value in [false, true] {
                let reached_within = |k: usize| {
                    rows.iter().all(|&r| {
                        let row = &data.rows()[r as usize];
                        if row.target == value {
                            return true;
                        }
                        let future = data.future_of(r as usize);
                        if future.iter().take(k).any(|&v| v == value) {
                            return true;
                        }
                        // Not reached — conclusive only if the whole
                        // window was recorded.
                        false
                    })
                };
                if let Some(bound) = (1..=horizon).find(|&k| reached_within(k)) {
                    out.push((
                        leaf,
                        assertion_with(
                            tree,
                            spec,
                            leaf,
                            value,
                            TemporalTemplate::Eventually {
                                bound: bound as u32,
                            },
                        ),
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Row;
    use crate::features::Target;
    use gm_rtl::parse_verilog;

    fn arbiter() -> gm_rtl::Module {
        parse_verilog(
            "module arbiter2(input clk, input rst, input req0, input req1,
                             output reg gnt0, output reg gnt1);
               always @(posedge clk)
                 if (rst) begin gnt0 <= 0; gnt1 <= 0; end
                 else begin
                   gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
                   gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
                 end
             endmodule",
        )
        .unwrap()
    }

    fn feat(m: &gm_rtl::Module, name: &str, offset: u32) -> Feature {
        Feature {
            signal: m.require(name).unwrap(),
            bit: 0,
            offset,
        }
    }

    fn sample(m: &gm_rtl::Module) -> TemporalAssertion {
        TemporalAssertion {
            literals: vec![(feat(m, "req0", 0), true), (feat(m, "req1", 1), false)],
            target: Target {
                signal: m.require("gnt0").unwrap(),
                bit: 0,
                offset: 2,
            },
            value: true,
            template: TemporalTemplate::Eventually { bound: 2 },
        }
    }

    #[test]
    fn eventuality_renders_in_all_formats() {
        let m = arbiter();
        let a = sample(&m);
        assert_eq!(a.to_ltl(&m), "req0 & X !req1 => X X F<=2 gnt0");
        assert_eq!(
            a.to_psl(&m),
            "always ((req0 && next[1] (!req1)) -> next_e[2..4] (gnt0));"
        );
        assert_eq!(
            a.to_sva(&m),
            "@(posedge clk) req0 ##1 !req1 |-> ##[1:3] gnt0;"
        );
        assert_eq!(a.consequent_offsets(), 2..=4);
    }

    #[test]
    fn next_and_stability_render() {
        let m = arbiter();
        let mut a = sample(&m);
        a.template = TemporalTemplate::Next { shift: 1 };
        assert_eq!(a.to_ltl(&m), "req0 & X !req1 => X X X gnt0");
        assert_eq!(
            a.to_psl(&m),
            "always ((req0 && next[1] (!req1)) -> next[3] (gnt0));"
        );
        assert_eq!(a.to_sva(&m), "@(posedge clk) req0 ##1 !req1 |-> ##2 gnt0;");
        assert_eq!(a.consequent_offsets(), 3..=3);

        a.template = TemporalTemplate::Stability { bound: 2 };
        a.value = false;
        assert_eq!(a.to_ltl(&m), "req0 & X !req1 => X X G<=2 !gnt0");
        assert_eq!(
            a.to_psl(&m),
            "always ((req0 && next[1] (!req1)) -> next_a[2..4] (!gnt0));"
        );
        assert_eq!(
            a.to_sva(&m),
            "@(posedge clk) req0 ##1 !req1 |-> ##1 !gnt0 [*3];"
        );
    }

    #[test]
    fn candidates_come_from_leaf_lookahead() {
        // A synthetic single-feature dataset with horizon 2:
        //   feature=1 rows: targets disagree now, all read 1 one cycle
        //     later (Next{1} and Eventually for both values);
        //   feature=0 rows: pure 0 now and 0 through the horizon
        //     (Stability{2}).
        let m = arbiter();
        let spec = MiningSpec {
            features: vec![feat(&m, "req0", 0)],
            initial_active: 1,
            target: Target {
                signal: m.require("gnt0").unwrap(),
                bit: 0,
                offset: 1,
            },
            window: 0,
        };
        let mut data = Dataset::with_horizon(2);
        // push_row records no future, so build rows through a fake
        // trace-like path: hand-extend the dataset via push_row is not
        // enough here — drive futures through a real trace instead.
        // Simpler: synthesize with push_row and splice futures by
        // re-adding through add_trace would need a simulator; instead
        // expose the behavior with rows whose futures stay empty and
        // check the inconclusive path, then use a trace-driven test in
        // the integration suite.
        data.push_row(Row {
            features: vec![true],
            target: true,
        });
        data.push_row(Row {
            features: vec![false],
            target: false,
        });
        let mut tree = DecisionTree::new(&spec);
        tree.fit(&data).unwrap();
        // Futures are empty -> every temporal claim is inconclusive.
        assert!(temporal_candidates(&tree, &spec, &data).is_empty());
    }

    #[test]
    fn trace_driven_candidates() {
        use gm_rtl::{cone_of, elaborate, Bv};
        use gm_sim::{NopObserver, Simulator};
        // q follows d one cycle behind: at an impure leaf over d@0
        // windows the miner should find next/eventually structure.
        let m = parse_verilog(
            "module m(input clk, input rst, input d, output reg q);
               always @(posedge clk)
                 if (rst) q <= 0; else q <= d;
             endmodule",
        )
        .unwrap();
        let e = elaborate(&m).unwrap();
        let q = m.require("q").unwrap();
        let d = m.require("d").unwrap();
        let cone = cone_of(&m, &e, q);
        let spec = MiningSpec::for_output(&m, &e, &cone, 0, 0);

        let mut sim = Simulator::new(&m).unwrap();
        let rst = m.require("rst").unwrap();
        sim.set_input(rst, Bv::one_bit());
        sim.step();
        sim.set_input(rst, Bv::zero_bit());
        // d: 1 0 1 1 1 0 — rows relate d@t to q@t+1.
        let patterns = [true, false, true, true, true, false];
        let vectors: Vec<_> = patterns
            .iter()
            .map(|&v| vec![(d, Bv::from_bool(v))])
            .collect();
        let trace = sim.run_vectors(&vectors, &mut NopObserver);

        let mut data = Dataset::with_horizon(1);
        data.add_trace(&spec, &trace);
        let mut tree = DecisionTree::new(&spec);
        tree.fit(&data).unwrap();
        // The tree splits on d@0 into two pure leaves; with horizon 1
        // the miner proposes stability windows where the next value
        // stayed put for every row of a leaf.
        let candidates = temporal_candidates(&tree, &spec, &data);
        for (leaf, a) in &candidates {
            assert!(tree.is_leaf(*leaf));
            assert!(matches!(a.template, TemporalTemplate::Stability { .. }));
        }
    }
}
