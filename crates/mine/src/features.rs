//! Mining features: signal bits at temporal offsets.
//!
//! The A-Miner's search space (§2.2 of the paper): the static analyzer
//! restricts mining to the logic cone of the target output, and the
//! mining window length determines how many cycles of history become
//! features. The paper's arbiter example mines `gnt0(t+1)` from
//! `req0/req1` at offsets `t-1` and `t`, later *extending* the search
//! with "registers and primary outputs in the farthest back temporal
//! state" (`gnt0(t-1)`) when the window alone cannot explain the output —
//! [`MiningSpec`] models exactly that split between initially active
//! features and extension candidates.

use gm_rtl::{Cone, Elab, Module, SignalId};

/// One mining feature: a bit of a signal observed `offset` cycles after
/// the window start.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Feature {
    /// The observed signal.
    pub signal: SignalId,
    /// The observed bit.
    pub bit: u32,
    /// Cycle offset within the window (0 = farthest back).
    pub offset: u32,
}

/// The prediction target: a bit of the output at a fixed offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Target {
    /// The target signal.
    pub signal: SignalId,
    /// The target bit.
    pub bit: u32,
    /// Cycle offset within the window.
    pub offset: u32,
}

/// The feature universe for mining one output bit.
///
/// `features[..initial_active]` are the paper's default search space
/// (cone inputs across the window); the remainder are extension
/// candidates (cone state registers at offset 0), activated only when a
/// leaf becomes contradictory.
#[derive(Clone, Debug, PartialEq)]
pub struct MiningSpec {
    /// All candidate features: active ones first.
    pub features: Vec<Feature>,
    /// How many features are initially active.
    pub initial_active: usize,
    /// The prediction target.
    pub target: Target,
    /// The mining window length `w` (features span offsets `0..=w`).
    pub window: u32,
}

impl MiningSpec {
    /// Builds the spec for one bit of a target signal.
    ///
    /// Features are the cone's primary inputs at offsets `0..=window`;
    /// extension candidates are the cone's state elements (which includes
    /// registered outputs) at offset 0 — the farthest-back temporal
    /// stage, following the paper's §6. The target sits at offset
    /// `window` for combinational outputs and `window + 1` (the
    /// post-edge value) for registered outputs.
    pub fn for_output(
        module: &Module,
        elab: &Elab,
        cone: &Cone,
        target_bit: u32,
        window: u32,
    ) -> Self {
        let mut features = Vec::new();
        for offset in 0..=window {
            for &sig in &cone.inputs {
                for bit in 0..module.signal_width(sig) {
                    features.push(Feature {
                        signal: sig,
                        bit,
                        offset,
                    });
                }
            }
        }
        let initial_active = features.len();
        for &sig in &cone.state {
            for bit in 0..module.signal_width(sig) {
                features.push(Feature {
                    signal: sig,
                    bit,
                    offset: 0,
                });
            }
        }
        let is_state = elab.is_state(cone.target);
        let target = Target {
            signal: cone.target,
            bit: target_bit,
            offset: if is_state { window + 1 } else { window },
        };
        MiningSpec {
            features,
            initial_active,
            target,
            window,
        }
    }

    /// The number of cycles a mining window spans (the row span).
    pub fn span(&self) -> u32 {
        self.features
            .iter()
            .map(|f| f.offset)
            .chain(std::iter::once(self.target.offset))
            .max()
            .unwrap_or(0)
            + 1
    }

    /// Whether feature `idx` observes a primary input (vs. a state
    /// element). Input literals determine the paper's input-space
    /// coverage accounting.
    pub fn is_input_feature(&self, module: &Module, idx: usize) -> bool {
        module.signal(self.features[idx].signal).is_input()
    }

    /// Human-readable feature name, e.g. `req0@1` or `gnt0[0]@0`.
    pub fn feature_name(&self, module: &Module, idx: usize) -> String {
        let f = &self.features[idx];
        let sig = module.signal(f.signal);
        if sig.width() > 1 {
            format!("{}[{}]@{}", sig.name(), f.bit, f.offset)
        } else {
            format!("{}@{}", sig.name(), f.offset)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_rtl::{cone_of, elaborate, parse_verilog};

    const ARBITER2: &str = "
    module arbiter2(input clk, input rst, input req0, input req1,
                    output reg gnt0, output reg gnt1);
      always @(posedge clk)
        if (rst) begin
          gnt0 <= 0; gnt1 <= 0;
        end else begin
          gnt0 <= (~gnt0 & req0) | (gnt0 & req0 & ~req1);
          gnt1 <= (gnt0 & req1) | (~gnt0 & ~req0 & req1);
        end
    endmodule";

    #[test]
    fn arbiter_spec_matches_paper_setup() {
        let m = parse_verilog(ARBITER2).unwrap();
        let e = elaborate(&m).unwrap();
        let gnt0 = m.require("gnt0").unwrap();
        let cone = cone_of(&m, &e, gnt0);
        let spec = MiningSpec::for_output(&m, &e, &cone, 0, 1);
        // Active: req0/req1 at offsets 0 and 1 = 4 features.
        assert_eq!(spec.initial_active, 4);
        // Extension: gnt0 at offset 0 (gnt1 is not in gnt0's cone).
        assert_eq!(spec.features.len(), 5);
        let ext = spec.features[4];
        assert_eq!(ext.signal, gnt0);
        assert_eq!(ext.offset, 0);
        // Registered target predicted at the post-edge cycle.
        assert_eq!(spec.target.offset, 2);
        assert_eq!(spec.span(), 3);
        assert!(spec.is_input_feature(&m, 0));
        assert!(!spec.is_input_feature(&m, 4));
    }

    #[test]
    fn combinational_target_sits_in_window() {
        let m = parse_verilog(
            "module m(input a, input [1:0] b, output z);
               assign z = a & b[1];
             endmodule",
        )
        .unwrap();
        let e = elaborate(&m).unwrap();
        let z = m.require("z").unwrap();
        let cone = cone_of(&m, &e, z);
        let spec = MiningSpec::for_output(&m, &e, &cone, 0, 0);
        assert_eq!(spec.target.offset, 0);
        // a + b[0..1] at offset 0.
        assert_eq!(spec.initial_active, 3);
        assert_eq!(spec.feature_name(&m, 0), "a@0");
        let b1 = spec.features.iter().position(|f| f.bit == 1).unwrap();
        assert_eq!(spec.feature_name(&m, b1), "b[1]@0");
    }
}
