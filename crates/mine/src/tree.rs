//! The incremental decision tree (the paper's §3, Figure 4).
//!
//! A variance-minimizing binary decision tree over boolean features. The
//! paper's two departures from a textbook tree are both here:
//!
//! * **100% confidence**: only error-0 leaves yield candidate assertions,
//!   and a split must *strictly* reduce the error sum — a single
//!   contradicting example discards a rule (§2.4);
//! * **incrementality** (Definition 6): when a counterexample row lands
//!   in a refuted leaf, the structure above the leaf is preserved and
//!   only the leaf re-splits, possibly after *extending* the feature
//!   search to state registers at the farthest-back offset (§6).
//!
//! Split scoring uses exact integer arithmetic (no float ties): for a
//! binary target, minimizing the summed squared error is equivalent to
//! maximizing `ones0²/count0 + ones1²/count1`.

use crate::dataset::Dataset;
use crate::features::MiningSpec;
use std::fmt;

/// Verification status of a leaf's candidate assertion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeafStatus {
    /// Candidate not yet (or unsuccessfully) checked.
    Open,
    /// Formally proved: a system invariant; never revisited.
    Proved,
}

/// A node of the tree.
#[derive(Clone, Debug)]
pub struct Node {
    /// Row indices (into the dataset) reaching this node.
    rows: Vec<u32>,
    /// Number of rows.
    count: usize,
    /// Number of rows with target = 1.
    ones: usize,
    /// Parent node and which side this node hangs off (`true` = the
    /// feature-is-1 side). `None` at the root.
    parent: Option<(usize, bool)>,
    kind: NodeKind,
}

#[derive(Clone, Debug)]
enum NodeKind {
    Leaf(LeafStatus),
    Split {
        feature: usize,
        zero: usize,
        one: usize,
    },
}

impl Node {
    /// The summed squared error is zero iff the node is pure.
    fn is_pure(&self) -> bool {
        self.ones == 0 || self.ones == self.count
    }

    /// The predicted target value (the mean, which is exact for pure
    /// nodes; an empty node predicts 0, the paper's zero-seed start).
    pub fn prediction(&self) -> bool {
        self.ones * 2 > self.count
    }

    /// Rows currently at this node.
    pub fn row_count(&self) -> usize {
        self.count
    }
}

/// Errors from tree construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MineError {
    /// Rows with identical candidate-feature values disagree on the
    /// target even after extending the search — the mining window is too
    /// short to explain the output.
    Contradictory {
        /// The node where the contradiction surfaced.
        node: usize,
    },
    /// New simulation data contradicted a leaf that formal verification
    /// proved — an internal soundness violation.
    ProvedLeafContradicted {
        /// The offending leaf.
        node: usize,
    },
}

impl fmt::Display for MineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MineError::Contradictory { node } => write!(
                f,
                "contradictory rows at node {node}: the mining window cannot explain the output"
            ),
            MineError::ProvedLeafContradicted { node } => {
                write!(f, "simulation contradicted proved leaf {node}")
            }
        }
    }
}

impl std::error::Error for MineError {}

/// The incremental decision tree for one output bit.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    /// Features `0..active` participate in splits; the rest are
    /// extension candidates.
    active: usize,
    initial_active: usize,
    total_features: usize,
}

impl DecisionTree {
    /// Creates a tree with a single empty root leaf for `spec`.
    pub fn new(spec: &MiningSpec) -> Self {
        DecisionTree {
            nodes: vec![Node {
                rows: Vec::new(),
                count: 0,
                ones: 0,
                parent: None,
                kind: NodeKind::Leaf(LeafStatus::Open),
            }],
            active: spec.initial_active,
            initial_active: spec.initial_active,
            total_features: spec.features.len(),
        }
    }

    /// The number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the extended (state-register) features have been activated.
    pub fn is_extended(&self) -> bool {
        self.active > self.initial_active
    }

    /// Node accessor.
    pub fn node(&self, idx: usize) -> &Node {
        &self.nodes[idx]
    }

    /// Whether `idx` is currently a leaf (a refuted leaf turns into a
    /// split when counterexample rows arrive).
    pub fn is_leaf(&self, idx: usize) -> bool {
        matches!(self.nodes[idx].kind, NodeKind::Leaf(_))
    }

    /// Whether the node's rows all agree on the target (zero error).
    pub fn is_pure(&self, idx: usize) -> bool {
        self.nodes[idx].is_pure()
    }

    /// The dataset row indices currently routed to a node. The temporal
    /// miner reads these to inspect a leaf's post-window target values
    /// (via [`crate::Dataset::future_of`]) without re-classifying.
    pub fn node_rows(&self, idx: usize) -> &[u32] {
        &self.nodes[idx].rows
    }

    /// Indices of all current leaves.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| matches!(self.nodes[i].kind, NodeKind::Leaf(_)))
            .collect()
    }

    /// The status of a leaf.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is not a leaf.
    pub fn leaf_status(&self, leaf: usize) -> LeafStatus {
        match self.nodes[leaf].kind {
            NodeKind::Leaf(s) => s,
            NodeKind::Split { .. } => panic!("node {leaf} is not a leaf"),
        }
    }

    /// Marks a leaf's candidate as formally proved.
    pub fn set_proved(&mut self, leaf: usize) {
        match &mut self.nodes[leaf].kind {
            NodeKind::Leaf(s) => *s = LeafStatus::Proved,
            NodeKind::Split { .. } => panic!("node {leaf} is not a leaf"),
        }
    }

    /// Whether every leaf is proved — the convergence condition (the
    /// tree is then the paper's *final decision tree* `F_z`).
    pub fn converged(&self) -> bool {
        self.leaves()
            .into_iter()
            .all(|l| self.leaf_status(l) == LeafStatus::Proved)
    }

    /// The (feature, value) path from the root to `node`.
    pub fn path(&self, node: usize) -> Vec<(usize, bool)> {
        let mut path = Vec::new();
        let mut cur = node;
        while let Some((parent, side)) = self.nodes[cur].parent {
            let feature = match self.nodes[parent].kind {
                NodeKind::Split { feature, .. } => feature,
                NodeKind::Leaf(_) => unreachable!("parent must be a split"),
            };
            path.push((feature, side));
            cur = parent;
        }
        path.reverse();
        path
    }

    /// The depth of `node` (root = 0).
    pub fn depth(&self, node: usize) -> usize {
        self.path(node).len()
    }

    /// The maximum leaf depth.
    pub fn max_depth(&self) -> usize {
        self.leaves()
            .into_iter()
            .map(|l| self.depth(l))
            .max()
            .unwrap_or(0)
    }

    /// Classifies a feature vector, returning the leaf it reaches.
    pub fn classify(&self, features: &[bool]) -> usize {
        let mut cur = 0usize;
        loop {
            match self.nodes[cur].kind {
                NodeKind::Leaf(_) => return cur,
                NodeKind::Split { feature, zero, one } => {
                    cur = if features[feature] { one } else { zero };
                }
            }
        }
    }

    /// The predicted target value for a feature vector.
    pub fn predict(&self, features: &[bool]) -> bool {
        self.nodes[self.classify(features)].prediction()
    }

    /// Builds the tree from the whole dataset (initial fit).
    ///
    /// # Errors
    ///
    /// See [`MineError::Contradictory`].
    pub fn fit(&mut self, data: &Dataset) -> Result<(), MineError> {
        debug_assert_eq!(self.nodes.len(), 1, "fit on a fresh tree");
        let root = &mut self.nodes[0];
        root.rows = (0..data.len() as u32).collect();
        root.count = data.len();
        root.ones = data.rows().iter().filter(|r| r.target).count();
        self.split_recursive(data, 0)
    }

    /// Routes freshly added rows down the tree (updating statistics on
    /// the way) and re-splits any leaf they made impure — the paper's
    /// `Ctx_simulation` + `Recompute_error` + continued splitting.
    ///
    /// # Errors
    ///
    /// See [`MineError`].
    pub fn add_rows(&mut self, data: &Dataset, new_rows: &[usize]) -> Result<(), MineError> {
        let mut touched = Vec::new();
        for &ri in new_rows {
            let row = &data.rows()[ri];
            let mut cur = 0usize;
            loop {
                let node = &mut self.nodes[cur];
                node.rows.push(ri as u32);
                node.count += 1;
                node.ones += usize::from(row.target);
                match node.kind {
                    NodeKind::Leaf(_) => {
                        if !touched.contains(&cur) {
                            touched.push(cur);
                        }
                        break;
                    }
                    NodeKind::Split { feature, zero, one } => {
                        cur = if row.features[feature] { one } else { zero };
                    }
                }
            }
        }
        for leaf in touched {
            if !self.nodes[leaf].is_pure() {
                if matches!(self.nodes[leaf].kind, NodeKind::Leaf(LeafStatus::Proved)) {
                    return Err(MineError::ProvedLeafContradicted { node: leaf });
                }
                self.split_recursive(data, leaf)?;
            }
        }
        Ok(())
    }

    /// Recursively splits `node` until every descendant leaf is pure.
    fn split_recursive(&mut self, data: &Dataset, node: usize) -> Result<(), MineError> {
        if self.nodes[node].is_pure() {
            return Ok(());
        }
        let path_features: Vec<usize> = self.path(node).into_iter().map(|(f, _)| f).collect();
        let best = match self.best_split(data, node, &path_features) {
            Some(f) => f,
            None => {
                // The paper's §6 extension: let the search see registers
                // and outputs at the farthest-back temporal stage.
                if self.active < self.total_features {
                    self.active = self.total_features;
                    match self.best_split(data, node, &path_features) {
                        Some(f) => f,
                        None => return Err(MineError::Contradictory { node }),
                    }
                } else {
                    return Err(MineError::Contradictory { node });
                }
            }
        };
        // Partition rows.
        let rows = std::mem::take(&mut self.nodes[node].rows);
        let mut zero_rows = Vec::new();
        let mut one_rows = Vec::new();
        let mut zero_ones = 0usize;
        let mut one_ones = 0usize;
        for &ri in &rows {
            let row = &data.rows()[ri as usize];
            if row.features[best] {
                one_ones += usize::from(row.target);
                one_rows.push(ri);
            } else {
                zero_ones += usize::from(row.target);
                zero_rows.push(ri);
            }
        }
        let zero_idx = self.nodes.len();
        self.nodes.push(Node {
            count: zero_rows.len(),
            ones: zero_ones,
            rows: zero_rows,
            parent: Some((node, false)),
            kind: NodeKind::Leaf(LeafStatus::Open),
        });
        let one_idx = self.nodes.len();
        self.nodes.push(Node {
            count: one_rows.len(),
            ones: one_ones,
            rows: one_rows,
            parent: Some((node, true)),
            kind: NodeKind::Leaf(LeafStatus::Open),
        });
        self.nodes[node].rows = rows;
        self.nodes[node].kind = NodeKind::Split {
            feature: best,
            zero: zero_idx,
            one: one_idx,
        };
        self.split_recursive(data, zero_idx)?;
        self.split_recursive(data, one_idx)
    }

    /// Finds the feature whose split strictly minimizes the children's
    /// summed squared error. Exact integer scoring: maximize
    /// `ones0²·count1 + ones1²·count0` over `count0·count1`, strictly
    /// above the parent's `ones²/count`.
    fn best_split(&self, data: &Dataset, node: usize, path: &[usize]) -> Option<usize> {
        let n = &self.nodes[node];
        let parent_num = (n.ones as u128) * (n.ones as u128);
        let parent_den = n.count as u128;
        let mut best: Option<(usize, u128, u128)> = None;
        for f in 0..self.active {
            if path.contains(&f) {
                continue;
            }
            let mut c1 = 0usize;
            let mut o1 = 0usize;
            for &ri in &n.rows {
                let row = &data.rows()[ri as usize];
                if row.features[f] {
                    c1 += 1;
                    o1 += usize::from(row.target);
                }
            }
            let c0 = n.count - c1;
            let o0 = n.ones - o1;
            if c0 == 0 || c1 == 0 {
                continue;
            }
            // score = o0²/c0 + o1²/c1 = (o0²·c1 + o1²·c0) / (c0·c1)
            let num = (o0 as u128).pow(2) * c1 as u128 + (o1 as u128).pow(2) * c0 as u128;
            let den = c0 as u128 * c1 as u128;
            // Strict improvement over the parent: num/den > parent_num/parent_den.
            if num * parent_den <= parent_num * den {
                continue;
            }
            match &best {
                None => best = Some((f, num, den)),
                Some((_, bn, bd)) => {
                    if num * bd > bn * den {
                        best = Some((f, num, den));
                    }
                }
            }
        }
        best.map(|(f, _, _)| f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Row;
    use crate::features::{Feature, MiningSpec, Target};
    use gm_rtl::SignalId;

    /// A spec over `n` synthetic single-bit input features (offset 0) and
    /// `ext` extension features.
    fn spec(n: usize, ext: usize) -> MiningSpec {
        let features = (0..n + ext)
            .map(|i| Feature {
                signal: SignalId::from_raw(i as u32),
                bit: 0,
                offset: 0,
            })
            .collect();
        MiningSpec {
            features,
            initial_active: n,
            target: Target {
                signal: SignalId::from_raw((n + ext) as u32),
                bit: 0,
                offset: 0,
            },
            window: 0,
        }
    }

    fn dataset_from(rows: &[(&[bool], bool)]) -> Dataset {
        let mut ds = Dataset::new();
        // Dataset only grows through add_trace normally; build directly
        // through the testing seam.
        for (f, t) in rows {
            ds.push_row(Row {
                features: f.to_vec(),
                target: *t,
            });
        }
        ds
    }

    #[test]
    fn stale_leaf_ids_are_rejected_after_resplit() {
        // Regression for the engine's leaf re-validation: a leaf id
        // captured before counterexample rows arrive may be re-split
        // into an internal node. Consumers must be able to detect that
        // (is_leaf / leaves()) instead of silently reading the internal
        // node's shorter path as if it were the original cube.
        let sp = spec(2, 0);
        let ds = dataset_from(&[(&[true, false], true), (&[false, false], false)]);
        let mut tree = DecisionTree::new(&sp);
        tree.fit(&ds).unwrap();
        // The pure leaf predicting true under a=1.
        let stale = *tree
            .leaves()
            .iter()
            .find(|&&l| tree.node(l).prediction())
            .unwrap();
        let path_before = tree.path(stale);

        // A counterexample row lands in that leaf and disagrees,
        // forcing a re-split on b.
        let mut ds = ds;
        let cex = ds.push_row(Row {
            features: vec![true, true],
            target: false,
        });
        tree.add_rows(&ds, &[cex]).unwrap();

        // The id still names a node — but not a leaf, and not the cube
        // it used to be: treating it as one would check a strictly
        // weaker antecedent.
        assert!(
            !tree.is_leaf(stale),
            "re-split leaf must stop reporting as a leaf"
        );
        assert!(!tree.leaves().contains(&stale));
        // No surviving leaf carries the stale cube either — the old
        // antecedent is gone, not remapped.
        assert!(
            tree.leaves().iter().all(|l| tree.path(*l) != path_before),
            "a leaf silently inherited the stale cube"
        );
    }

    #[test]
    fn learns_a_conjunction_exactly() {
        // z = a & b over the full truth table.
        let sp = spec(2, 0);
        let ds = dataset_from(&[
            (&[false, false], false),
            (&[false, true], false),
            (&[true, false], false),
            (&[true, true], true),
        ]);
        let mut tree = DecisionTree::new(&sp);
        tree.fit(&ds).unwrap();
        for row in ds.rows() {
            assert_eq!(tree.predict(&row.features), row.target);
        }
        // Tree: root split + one pure side + one further split = 5 nodes.
        assert_eq!(tree.node_count(), 5);
        assert_eq!(tree.leaves().len(), 3);
    }

    #[test]
    fn empty_dataset_predicts_zero() {
        let sp = spec(2, 0);
        let ds = Dataset::new();
        let mut tree = DecisionTree::new(&sp);
        tree.fit(&ds).unwrap();
        assert_eq!(tree.leaves(), vec![0]);
        assert!(!tree.node(0).prediction(), "zero-seed: output always 0");
    }

    #[test]
    fn incremental_add_preserves_structure_and_resplits_leaf() {
        // Start with data where z looks like `a`, then add a row showing
        // z = a & b: the a=1 leaf must re-split on b, and the a=0 side
        // must keep its node identity (Definition 6).
        let sp = spec(2, 0);
        let mut ds = dataset_from(&[(&[false, true], false), (&[true, true], true)]);
        let mut tree = DecisionTree::new(&sp);
        tree.fit(&ds).unwrap();
        let leaves_before = tree.leaves();
        assert_eq!(leaves_before.len(), 2);
        let zero_leaf = leaves_before
            .iter()
            .copied()
            .find(|&l| !tree.node(l).prediction())
            .unwrap();
        tree.set_proved(zero_leaf);

        // Counterexample: a=1, b=0 -> z=0 contradicts the a=1 leaf.
        ds.push_row(Row {
            features: vec![true, false],
            target: false,
        });
        tree.add_rows(&ds, &[2]).unwrap();
        assert_eq!(
            tree.leaf_status(zero_leaf),
            LeafStatus::Proved,
            "untouched proved leaf survives"
        );
        assert_eq!(tree.leaves().len(), 3);
        assert!(!tree.predict(&[true, false]));
        assert!(tree.predict(&[true, true]));
    }

    #[test]
    fn extension_features_activate_when_stuck() {
        // Target equals the extension feature; the two active features
        // are pure noise. With identical active values and differing
        // targets, the tree must extend the search (the paper's
        // gnt0(t-1) moment).
        let sp = spec(2, 1);
        let ds = dataset_from(&[(&[true, false, false], false), (&[true, false, true], true)]);
        let mut tree = DecisionTree::new(&sp);
        tree.fit(&ds).unwrap();
        assert_eq!(tree.leaves().len(), 2);
        assert!(tree.predict(&[true, false, true]));
        assert!(!tree.predict(&[true, false, false]));
    }

    #[test]
    fn contradiction_is_reported() {
        let sp = spec(1, 0);
        let ds = dataset_from(&[(&[true], true), (&[true], false)]);
        let mut tree = DecisionTree::new(&sp);
        assert!(matches!(
            tree.fit(&ds),
            Err(MineError::Contradictory { .. })
        ));
    }

    #[test]
    fn paths_and_depths() {
        let sp = spec(2, 0);
        let ds = dataset_from(&[
            (&[false, false], false),
            (&[false, true], false),
            (&[true, false], false),
            (&[true, true], true),
        ]);
        let mut tree = DecisionTree::new(&sp);
        tree.fit(&ds).unwrap();
        let deep = tree.classify(&[true, true]);
        let path = tree.path(deep);
        assert_eq!(path.len(), 2);
        assert!(path.iter().all(|(_, v)| *v));
        assert_eq!(tree.max_depth(), 2);
        assert_eq!(tree.depth(0), 0);
    }

    #[test]
    fn converged_only_when_all_leaves_proved() {
        let sp = spec(1, 0);
        let ds = dataset_from(&[(&[false], false), (&[true], true)]);
        let mut tree = DecisionTree::new(&sp);
        tree.fit(&ds).unwrap();
        assert!(!tree.converged());
        for leaf in tree.leaves() {
            tree.set_proved(leaf);
        }
        assert!(tree.converged());
    }
}
