//! Mining datasets: windowed rows extracted from simulation traces.

use crate::features::MiningSpec;
use gm_rtl::Module;
use gm_sim::{
    CompileOptions, CompiledModule, NopBatchObserver, NopObserver, SimBackend, TestSuite, Trace,
};

/// One training example: feature values (aligned with
/// [`MiningSpec::features`]) and the target value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Values of every candidate feature (active and extension).
    pub features: Vec<bool>,
    /// The target bit value.
    pub target: bool,
}

/// A growing set of rows for one mining target.
///
/// Rows carry values for *all* candidate features (including extension
/// candidates), so activating an extension feature later never requires
/// revisiting traces — the incremental tree just widens its search.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    rows: Vec<Row>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// The rows collected so far.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset is empty (the paper's zero-pattern limit study
    /// starts here).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a hand-constructed row, returning its index. Intended for
    /// synthetic datasets; simulation data comes via [`Dataset::add_trace`].
    pub fn push_row(&mut self, row: Row) -> usize {
        self.rows.push(row);
        self.rows.len() - 1
    }

    /// Extracts every complete window of `trace` as a row. Returns the
    /// indices of the added rows.
    ///
    /// A trace of `n` cycles yields `n - span + 1` rows (none if shorter
    /// than the window span). Duplicate rows are kept — the decision tree
    /// works on counts, and duplicates mirror the paper's treatment of
    /// simulation data.
    pub fn add_trace(&mut self, spec: &MiningSpec, trace: &Trace) -> Vec<usize> {
        let span = spec.span() as usize;
        let mut added = Vec::new();
        if trace.len() < span {
            return added;
        }
        for start in 0..=(trace.len() - span) {
            let features = spec
                .features
                .iter()
                .map(|f| trace.bit(start + f.offset as usize, f.signal, f.bit))
                .collect();
            let target = trace.bit(
                start + spec.target.offset as usize,
                spec.target.signal,
                spec.target.bit,
            );
            added.push(self.rows.len());
            self.rows.push(Row { features, target });
        }
        added
    }

    /// Adds rows from several traces.
    pub fn add_traces<'t>(
        &mut self,
        spec: &MiningSpec,
        traces: impl IntoIterator<Item = &'t Trace>,
    ) -> Vec<usize> {
        let mut all = Vec::new();
        for t in traces {
            all.extend(self.add_trace(spec, t));
        }
        all
    }

    /// Simulates every segment of `suite` on `module` through the
    /// chosen simulation backend and adds the resulting traces — the
    /// dataset-extraction path of the paper's data generator. The
    /// compiled backends produce traces bit-identical to the
    /// interpreter, so the extracted rows never depend on the backend.
    ///
    /// # Errors
    ///
    /// Propagates elaboration errors from simulation.
    pub fn add_suite(
        &mut self,
        spec: &MiningSpec,
        module: &Module,
        suite: &TestSuite,
        backend: SimBackend,
    ) -> gm_rtl::Result<Vec<usize>> {
        let traces = match backend {
            SimBackend::Interpreter => suite.run(module, &mut NopObserver)?,
            SimBackend::CompiledScalar => {
                // No coverage is attached here, so compile the tape
                // probe-free: feature extraction pays nothing for
                // observation.
                let compiled =
                    CompiledModule::compile_with(module, CompileOptions { probes: false })?;
                suite
                    .segments()
                    .iter()
                    .map(|seg| compiled.run_segment(module, &seg.vectors, &mut NopBatchObserver))
                    .collect()
            }
            SimBackend::CompiledBatch | SimBackend::CompiledBatchWide(_) => {
                let compiled =
                    CompiledModule::compile_with(module, CompileOptions { probes: false })?;
                suite.run_compiled(
                    module,
                    &compiled,
                    &mut NopBatchObserver,
                    backend.lane_block(),
                )
            }
        };
        Ok(self.add_traces(spec, &traces))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_rtl::{cone_of, elaborate, parse_verilog, Bv};
    use gm_sim::{NopObserver, Simulator};

    #[test]
    fn windows_slide_over_the_trace() {
        let m = parse_verilog(
            "module m(input clk, input rst, input d, output reg q);
               always @(posedge clk)
                 if (rst) q <= 0; else q <= d;
             endmodule",
        )
        .unwrap();
        let e = elaborate(&m).unwrap();
        let q = m.require("q").unwrap();
        let d = m.require("d").unwrap();
        let cone = cone_of(&m, &e, q);
        let spec = crate::features::MiningSpec::for_output(&m, &e, &cone, 0, 0);
        assert_eq!(spec.span(), 2, "d@0 -> q@1");

        let mut sim = Simulator::new(&m).unwrap();
        let rst = m.require("rst").unwrap();
        sim.set_input(rst, Bv::one_bit());
        sim.step();
        sim.set_input(rst, Bv::zero_bit());
        let patterns = [true, false, true, true];
        let vectors: Vec<_> = patterns
            .iter()
            .map(|&v| vec![(d, Bv::from_bool(v))])
            .collect();
        let trace = sim.run_vectors(&vectors, &mut NopObserver);

        let mut ds = Dataset::new();
        let added = ds.add_trace(&spec, &trace);
        assert_eq!(added, vec![0, 1, 2]);
        // Every row obeys q(t+1) = d(t); feature 0 is d@0.
        let d_idx = spec
            .features
            .iter()
            .position(|f| f.signal == d && f.offset == 0)
            .unwrap();
        for row in ds.rows() {
            assert_eq!(row.target, row.features[d_idx]);
        }
    }

    #[test]
    fn add_suite_rows_identical_across_backends() {
        let m = parse_verilog(
            "module m(input clk, input rst, input d, output reg q);
               always @(posedge clk)
                 if (rst) q <= 0; else q <= d;
             endmodule",
        )
        .unwrap();
        let e = elaborate(&m).unwrap();
        let q = m.require("q").unwrap();
        let cone = cone_of(&m, &e, q);
        let spec = crate::features::MiningSpec::for_output(&m, &e, &cone, 0, 0);
        let mut suite = TestSuite::new();
        for seed in 0..3u64 {
            suite.push(
                format!("s{seed}"),
                gm_sim::collect_vectors(&mut gm_sim::RandomStimulus::new(&m, seed, 12)),
            );
        }
        let mut by_backend = Vec::new();
        for backend in [
            SimBackend::Interpreter,
            SimBackend::CompiledScalar,
            SimBackend::CompiledBatch,
        ] {
            let mut ds = Dataset::new();
            let added = ds.add_suite(&spec, &m, &suite, backend).unwrap();
            assert_eq!(added.len(), ds.len());
            by_backend.push(ds.rows().to_vec());
        }
        assert_eq!(by_backend[0], by_backend[1]);
        assert_eq!(by_backend[0], by_backend[2]);
    }

    #[test]
    fn short_traces_yield_nothing() {
        let m = parse_verilog(
            "module m(input clk, input rst, input d, output reg q);
               always @(posedge clk)
                 if (rst) q <= 0; else q <= d;
             endmodule",
        )
        .unwrap();
        let e = elaborate(&m).unwrap();
        let q = m.require("q").unwrap();
        let cone = cone_of(&m, &e, q);
        let spec = crate::features::MiningSpec::for_output(&m, &e, &cone, 0, 1);
        let trace = {
            let mut sim = Simulator::new(&m).unwrap();
            sim.run_vectors(&[vec![]], &mut NopObserver)
        };
        let mut ds = Dataset::new();
        assert!(ds.add_trace(&spec, &trace).is_empty());
        assert!(ds.is_empty());
    }
}
