//! Mining datasets: windowed rows extracted from simulation traces.

use crate::features::MiningSpec;
use gm_rtl::Module;
use gm_sim::{
    CompileOptions, CompiledModule, NopBatchObserver, NopObserver, SimBackend, TestSuite, Trace,
};

/// One training example: feature values (aligned with
/// [`MiningSpec::features`]) and the target value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Values of every candidate feature (active and extension).
    pub features: Vec<bool>,
    /// The target bit value.
    pub target: bool,
}

/// What one extraction pass added: the indices of the new rows, plus
/// the number of traces that were too short to yield even one window.
///
/// The refinement loop treats the two empty cases differently — a
/// short trace means the stimulus was *dropped* (the engine counts it
/// in its iteration report), while zero rows from a long-enough trace
/// set means the stimulus carried no new windows — so extraction
/// surfaces them distinctly instead of returning one empty `Vec` for
/// both.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExtractedRows {
    /// Indices of the rows added to the dataset.
    pub rows: Vec<usize>,
    /// Traces shorter than the window span, which yielded nothing.
    pub short_traces: usize,
}

impl ExtractedRows {
    /// Whether the pass added no rows (regardless of why).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Folds another pass's outcome into this one.
    pub fn extend(&mut self, other: ExtractedRows) {
        self.rows.extend(other.rows);
        self.short_traces += other.short_traces;
    }
}

/// A growing set of rows for one mining target.
///
/// Rows carry values for *all* candidate features (including extension
/// candidates), so activating an extension feature later never requires
/// revisiting traces — the incremental tree just widens its search.
///
/// A dataset built with [`Dataset::with_horizon`] additionally records,
/// per row, the target values up to `horizon` cycles *past* the window
/// end (clipped at the trace boundary). The temporal miner reads these
/// to propose next-cycle, bounded-eventuality and stability templates
/// without re-simulating.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    rows: Vec<Row>,
    horizon: u32,
    /// Per-row target values at offsets `target.offset + 1 ..=
    /// target.offset + horizon`, truncated where the trace ended.
    future: Vec<Vec<bool>>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Creates an empty dataset that records `horizon` cycles of
    /// post-window target values per row (for temporal mining).
    pub fn with_horizon(horizon: u32) -> Self {
        Dataset {
            horizon,
            ..Dataset::default()
        }
    }

    /// The rows collected so far.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset is empty (the paper's zero-pattern limit study
    /// starts here).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The temporal-lookahead horizon this dataset records (0 = none).
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// The recorded post-window target values of one row: index `j`
    /// holds the target `j + 1` cycles after the row's target cycle.
    /// Shorter than the horizon when the source trace ended early;
    /// empty for hand-pushed rows.
    pub fn future_of(&self, row: usize) -> &[bool] {
        &self.future[row]
    }

    /// Appends a hand-constructed row, returning its index. Intended for
    /// synthetic datasets; simulation data comes via [`Dataset::add_trace`].
    pub fn push_row(&mut self, row: Row) -> usize {
        self.rows.push(row);
        self.future.push(Vec::new());
        self.rows.len() - 1
    }

    /// Extracts every complete window of `trace` as a row.
    ///
    /// A trace of `n` cycles yields `n - span + 1` rows; a trace
    /// shorter than the window span yields none and is counted in
    /// [`ExtractedRows::short_traces`]. Duplicate rows are kept — the
    /// decision tree works on counts, and duplicates mirror the paper's
    /// treatment of simulation data.
    pub fn add_trace(&mut self, spec: &MiningSpec, trace: &Trace) -> ExtractedRows {
        let span = spec.span() as usize;
        let mut out = ExtractedRows::default();
        if trace.len() < span {
            out.short_traces = 1;
            return out;
        }
        for start in 0..=(trace.len() - span) {
            let features = spec
                .features
                .iter()
                .map(|f| trace.bit(start + f.offset as usize, f.signal, f.bit))
                .collect();
            let target_cycle = start + spec.target.offset as usize;
            let target = trace.bit(target_cycle, spec.target.signal, spec.target.bit);
            let future = (1..=self.horizon as usize)
                .map_while(|j| {
                    let cycle = target_cycle + j;
                    (cycle < trace.len())
                        .then(|| trace.bit(cycle, spec.target.signal, spec.target.bit))
                })
                .collect();
            out.rows.push(self.rows.len());
            self.rows.push(Row { features, target });
            self.future.push(future);
        }
        out
    }

    /// Adds rows from several traces.
    pub fn add_traces<'t>(
        &mut self,
        spec: &MiningSpec,
        traces: impl IntoIterator<Item = &'t Trace>,
    ) -> ExtractedRows {
        let mut all = ExtractedRows::default();
        for t in traces {
            all.extend(self.add_trace(spec, t));
        }
        all
    }

    /// Simulates every segment of `suite` on `module` through the
    /// chosen simulation backend and adds the resulting traces — the
    /// dataset-extraction path of the paper's data generator. The
    /// compiled backends produce traces bit-identical to the
    /// interpreter, so the extracted rows never depend on the backend.
    ///
    /// # Errors
    ///
    /// Propagates elaboration errors from simulation.
    pub fn add_suite(
        &mut self,
        spec: &MiningSpec,
        module: &Module,
        suite: &TestSuite,
        backend: SimBackend,
    ) -> gm_rtl::Result<ExtractedRows> {
        let traces = match backend {
            SimBackend::Interpreter => suite.run(module, &mut NopObserver)?,
            SimBackend::CompiledScalar => {
                // No coverage is attached here, so compile the tape
                // probe-free: feature extraction pays nothing for
                // observation.
                let compiled =
                    CompiledModule::compile_with(module, CompileOptions { probes: false })?;
                suite
                    .segments()
                    .iter()
                    .map(|seg| compiled.run_segment(module, &seg.vectors, &mut NopBatchObserver))
                    .collect()
            }
            SimBackend::CompiledBatch | SimBackend::CompiledBatchWide(_) => {
                let compiled =
                    CompiledModule::compile_with(module, CompileOptions { probes: false })?;
                suite.run_compiled(
                    module,
                    &compiled,
                    &mut NopBatchObserver,
                    backend.lane_block(),
                )
            }
        };
        Ok(self.add_traces(spec, &traces))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_rtl::{cone_of, elaborate, parse_verilog, Bv};
    use gm_sim::{NopObserver, Simulator};

    #[test]
    fn windows_slide_over_the_trace() {
        let m = parse_verilog(
            "module m(input clk, input rst, input d, output reg q);
               always @(posedge clk)
                 if (rst) q <= 0; else q <= d;
             endmodule",
        )
        .unwrap();
        let e = elaborate(&m).unwrap();
        let q = m.require("q").unwrap();
        let d = m.require("d").unwrap();
        let cone = cone_of(&m, &e, q);
        let spec = crate::features::MiningSpec::for_output(&m, &e, &cone, 0, 0);
        assert_eq!(spec.span(), 2, "d@0 -> q@1");

        let mut sim = Simulator::new(&m).unwrap();
        let rst = m.require("rst").unwrap();
        sim.set_input(rst, Bv::one_bit());
        sim.step();
        sim.set_input(rst, Bv::zero_bit());
        let patterns = [true, false, true, true];
        let vectors: Vec<_> = patterns
            .iter()
            .map(|&v| vec![(d, Bv::from_bool(v))])
            .collect();
        let trace = sim.run_vectors(&vectors, &mut NopObserver);

        let mut ds = Dataset::new();
        let added = ds.add_trace(&spec, &trace);
        assert_eq!(added.rows, vec![0, 1, 2]);
        assert_eq!(added.short_traces, 0);
        // Every row obeys q(t+1) = d(t); feature 0 is d@0.
        let d_idx = spec
            .features
            .iter()
            .position(|f| f.signal == d && f.offset == 0)
            .unwrap();
        for row in ds.rows() {
            assert_eq!(row.target, row.features[d_idx]);
        }
    }

    #[test]
    fn horizon_records_post_window_targets() {
        let m = parse_verilog(
            "module m(input clk, input rst, input d, output reg q);
               always @(posedge clk)
                 if (rst) q <= 0; else q <= d;
             endmodule",
        )
        .unwrap();
        let e = elaborate(&m).unwrap();
        let q = m.require("q").unwrap();
        let d = m.require("d").unwrap();
        let cone = cone_of(&m, &e, q);
        let spec = crate::features::MiningSpec::for_output(&m, &e, &cone, 0, 0);

        let mut sim = Simulator::new(&m).unwrap();
        let rst = m.require("rst").unwrap();
        sim.set_input(rst, Bv::one_bit());
        sim.step();
        sim.set_input(rst, Bv::zero_bit());
        let patterns = [true, false, true, true];
        let vectors: Vec<_> = patterns
            .iter()
            .map(|&v| vec![(d, Bv::from_bool(v))])
            .collect();
        let trace = sim.run_vectors(&vectors, &mut NopObserver);

        let mut ds = Dataset::with_horizon(2);
        assert_eq!(ds.horizon(), 2);
        let added = ds.add_trace(&spec, &trace);
        assert_eq!(added.rows.len(), 3);
        // Row r's target sits at cycle r+1; its future holds the
        // target at cycles r+2, r+3 where those exist. q tracks d one
        // cycle behind, so targets over cycles 1..=3 are d's pattern.
        assert_eq!(ds.future_of(0), &[false, true]);
        assert_eq!(ds.future_of(1), &[true]);
        assert_eq!(ds.future_of(2), &[] as &[bool]);
        // Hand-pushed rows have no recorded future.
        let idx = ds.push_row(Row {
            features: vec![true],
            target: true,
        });
        assert!(ds.future_of(idx).is_empty());
    }

    #[test]
    fn add_suite_rows_identical_across_backends() {
        let m = parse_verilog(
            "module m(input clk, input rst, input d, output reg q);
               always @(posedge clk)
                 if (rst) q <= 0; else q <= d;
             endmodule",
        )
        .unwrap();
        let e = elaborate(&m).unwrap();
        let q = m.require("q").unwrap();
        let cone = cone_of(&m, &e, q);
        let spec = crate::features::MiningSpec::for_output(&m, &e, &cone, 0, 0);
        let mut suite = TestSuite::new();
        for seed in 0..3u64 {
            suite.push(
                format!("s{seed}"),
                gm_sim::collect_vectors(&mut gm_sim::RandomStimulus::new(&m, seed, 12)),
            );
        }
        let mut by_backend = Vec::new();
        for backend in [
            SimBackend::Interpreter,
            SimBackend::CompiledScalar,
            SimBackend::CompiledBatch,
        ] {
            let mut ds = Dataset::new();
            let added = ds.add_suite(&spec, &m, &suite, backend).unwrap();
            assert_eq!(added.rows.len(), ds.len());
            by_backend.push(ds.rows().to_vec());
        }
        assert_eq!(by_backend[0], by_backend[1]);
        assert_eq!(by_backend[0], by_backend[2]);
    }

    #[test]
    fn short_traces_are_counted_distinctly() {
        let m = parse_verilog(
            "module m(input clk, input rst, input d, output reg q);
               always @(posedge clk)
                 if (rst) q <= 0; else q <= d;
             endmodule",
        )
        .unwrap();
        let e = elaborate(&m).unwrap();
        let q = m.require("q").unwrap();
        let cone = cone_of(&m, &e, q);
        let spec = crate::features::MiningSpec::for_output(&m, &e, &cone, 0, 1);
        let trace = {
            let mut sim = Simulator::new(&m).unwrap();
            sim.run_vectors(&[vec![]], &mut NopObserver)
        };
        let mut ds = Dataset::new();
        let added = ds.add_trace(&spec, &trace);
        // The old API returned one indistinguishable empty Vec here;
        // now the dropped stimulus is visible.
        assert!(added.is_empty());
        assert_eq!(added.short_traces, 1);
        assert!(ds.is_empty());
        // A long-enough but windowless... every long-enough trace
        // yields rows, so the other empty case is only reachable via
        // an empty trace set.
        let none = ds.add_traces(&spec, std::iter::empty());
        assert!(none.is_empty());
        assert_eq!(none.short_traces, 0);
    }
}
