//! Property-based round-trips for the temporal assertion renderers.
//!
//! Random [`TemporalAssertion`]s — multi-offset literal sets, wide-signal
//! bit atoms, every template — are rendered through `to_ltl` / `to_psl` /
//! `to_sva` and parsed back with small test-local grammars. The recovered
//! structure (literal multiset with offsets, consequent window, template
//! shape, polarity) must match the source assertion.
//!
//! SVA is time-shift normalized: `sva_antecedent` anchors the sequence at
//! the earliest literal's cycle, so the parse is compared against the
//! assertion with all offsets shifted down by the minimum literal offset
//! (an equivalent property under `always`-style implicit clocking). LTL
//! and PSL keep absolute offsets and are compared un-shifted.

use gm_mine::{Feature, Target, TemporalAssertion, TemporalTemplate};
use gm_rtl::{parse_verilog, Module, SignalId};
use proptest::prelude::*;

/// Mixed-width fixture: `w` is 4 bits wide so atoms render as `w[i]`.
const SRC: &str = "
module rt(input clk, input a, input b, input [3:0] w, output reg y);
  always @(posedge clk) y <= a;
endmodule";

fn module() -> Module {
    parse_verilog(SRC).unwrap()
}

/// Mirror of the renderer's atom naming: bit-indexed iff the signal is
/// wider than one bit.
fn atom(m: &Module, signal: SignalId, bit: u32) -> String {
    let sig = m.signal(signal);
    if sig.width() > 1 {
        format!("{}[{bit}]", sig.name())
    } else {
        sig.name().to_string()
    }
}

/// The antecedent literal pool: single-bit signals and wide-signal bits.
fn pool(m: &Module) -> Vec<(SignalId, u32)> {
    let a = m.require("a").unwrap();
    let b = m.require("b").unwrap();
    let w = m.require("w").unwrap();
    vec![(a, 0), (b, 0), (w, 0), (w, 2), (w, 3)]
}

/// Builds an assertion from raw generator draws. Literal offsets are
/// folded into `0..=d` so the antecedent never outruns the target cycle
/// (the invariant mined candidates satisfy by construction).
fn build(
    m: &Module,
    raw_lits: &[(u32, u32, bool)],
    d: u32,
    kind: u8,
    span: u32,
    value: bool,
) -> TemporalAssertion {
    let pool = pool(m);
    let literals = raw_lits
        .iter()
        .map(|&(sig, offset, v)| {
            let (signal, bit) = pool[sig as usize % pool.len()];
            (
                Feature {
                    signal,
                    bit,
                    offset: offset % (d + 1),
                },
                v,
            )
        })
        .collect();
    let template = match kind % 3 {
        0 => TemporalTemplate::Next { shift: span },
        1 => TemporalTemplate::Eventually { bound: span },
        _ => TemporalTemplate::Stability { bound: span },
    };
    TemporalAssertion {
        literals,
        target: Target {
            signal: m.require("y").unwrap(),
            bit: 0,
            offset: d,
        },
        value,
        template,
    }
}

/// Template shape recovered from concrete syntax.
#[derive(Debug, PartialEq, Eq)]
enum Shape {
    /// A single implied cycle (`##N lit` / `next[n]`).
    Point,
    /// An existential window (`##[lo:hi]` / `next_e`).
    Range,
    /// A universal window as consecutive repetition (`[*m]` / `next_a`).
    Repeat(u32),
}

/// Renderer-independent normal form of a temporal assertion.
#[derive(Debug, PartialEq, Eq)]
struct Norm {
    /// `(atom, cycle, polarity)` literal multiset, sorted.
    ant: Vec<(String, u32, bool)>,
    cons: (String, bool),
    lo: u32,
    hi: u32,
    shape: Shape,
}

/// What every parser must recover, shifted down by `base` cycles.
fn expected(m: &Module, a: &TemporalAssertion, base: u32) -> Norm {
    let mut ant: Vec<_> = a
        .literals
        .iter()
        .map(|(f, v)| (atom(m, f.signal, f.bit), f.offset - base, *v))
        .collect();
    ant.sort();
    let offsets = a.consequent_offsets();
    let shape = match a.template {
        TemporalTemplate::Next { .. } => Shape::Point,
        TemporalTemplate::Eventually { .. } => Shape::Range,
        TemporalTemplate::Stability { bound } => Shape::Repeat(bound + 1),
    };
    Norm {
        ant,
        cons: (atom(m, a.target.signal, a.target.bit), a.value),
        lo: *offsets.start() - base,
        hi: *offsets.end() - base,
        shape,
    }
}

/// The SVA anchor cycle: the earliest literal offset (0 when empty).
fn sva_base(a: &TemporalAssertion) -> u32 {
    a.literals.iter().map(|(f, _)| f.offset).min().unwrap_or(0)
}

fn split_literal(tok: &str) -> (String, bool) {
    match tok.strip_prefix('!') {
        Some(name) => (name.to_string(), false),
        None => (tok.to_string(), true),
    }
}

/// Parses `@(posedge clk) seq |-> cons;` back into normal form.
fn parse_sva(s: &str) -> (String, Norm) {
    let s = s.strip_prefix("@(posedge ").expect("clocking event");
    let (clock, rest) = s.split_once(") ").expect("close clocking");
    let rest = rest.strip_suffix(';').expect("trailing semicolon");
    let (ant_s, cons_s) = rest.split_once(" |-> ").expect("overlapped implication");

    let mut ant = Vec::new();
    let mut last = 0u32;
    if ant_s != "1" {
        let mut pos = 0u32;
        for tok in ant_s.split_whitespace() {
            if tok == "&&" {
                continue;
            }
            if let Some(delay) = tok.strip_prefix("##") {
                pos += delay.parse::<u32>().expect("##N delay");
            } else {
                let (name, v) = split_literal(tok);
                ant.push((name, pos, v));
                last = pos;
            }
        }
    }
    ant.sort();

    let toks: Vec<&str> = cons_s.split_whitespace().collect();
    let (shape, lo, hi) = if let Some(range) = toks[0].strip_prefix("##[") {
        let (a, b) = range
            .strip_suffix(']')
            .and_then(|r| r.split_once(':'))
            .expect("##[lo:hi]");
        let (a, b) = (a.parse::<u32>().unwrap(), b.parse::<u32>().unwrap());
        (Shape::Range, last + a, last + b)
    } else {
        let n: u32 = toks[0].strip_prefix("##").unwrap().parse().unwrap();
        match toks.get(2) {
            Some(rep) => {
                let m: u32 = rep
                    .strip_prefix("[*")
                    .and_then(|r| r.strip_suffix(']'))
                    .expect("[*m] repetition")
                    .parse()
                    .unwrap();
                (Shape::Repeat(m), last + n, last + n + m - 1)
            }
            None => (Shape::Point, last + n, last + n),
        }
    };
    let (cname, cv) = split_literal(toks[1]);
    (
        clock.to_string(),
        Norm {
            ant,
            cons: (cname, cv),
            lo,
            hi,
            shape,
        },
    )
}

/// Parses an LTL atom of the form `X X !name` into `(name, depth, value)`.
fn parse_ltl_atom(s: &str) -> (String, u32, bool) {
    let mut depth = 0u32;
    let mut rest = s;
    while let Some(r) = rest.strip_prefix("X ") {
        depth += 1;
        rest = r;
    }
    let (name, v) = split_literal(rest);
    (name, depth, v)
}

/// Parses `ant => cons` back into normal form. LTL keeps absolute
/// offsets, so compare against `expected(.., base = 0)`.
fn parse_ltl(s: &str) -> Norm {
    let (ant_s, cons_s) = s.split_once(" => ").expect("exactly one implication");
    let mut ant = Vec::new();
    if ant_s != "true" {
        for part in ant_s.split(" & ") {
            ant.push(parse_ltl_atom(part));
        }
    }
    ant.sort();

    let (cname, depth, shape, span, cv) = {
        let (name, depth, v) = parse_ltl_atom(cons_s);
        // The residual operator (if any) survives in `name` because
        // parse_ltl_atom only strips `X ` prefixes: e.g. `F<=2 y`.
        if let Some((op, lit)) = name.split_once(' ') {
            let (shape, bound) = if let Some(b) = op.strip_prefix("F<=") {
                (Shape::Range, b.parse::<u32>().unwrap())
            } else if let Some(b) = op.strip_prefix("G<=") {
                let b: u32 = b.parse().unwrap();
                (Shape::Repeat(b + 1), b)
            } else {
                panic!("unknown LTL operator {op:?}");
            };
            let (lname, lv) = split_literal(lit);
            (lname, depth, shape, bound, lv)
        } else {
            (name, depth, Shape::Point, 0, v)
        }
    };
    Norm {
        ant,
        cons: (cname, cv),
        lo: depth,
        hi: depth + span,
        shape,
    }
}

/// Parses `always ((ant) -> cons);` back into normal form (absolute
/// offsets, like LTL).
fn parse_psl(s: &str) -> Norm {
    let (ant_s, cons_s) = s.split_once(" -> ").expect("exactly one arrow");
    let ant_s = ant_s
        .strip_prefix("always ((")
        .and_then(|a| a.strip_suffix(')'))
        .expect("parenthesized antecedent");
    let cons_s = cons_s.strip_suffix(");").expect("closing paren");

    let mut ant = Vec::new();
    if ant_s != "true" {
        for part in ant_s.split(" && ") {
            if let Some(rest) = part.strip_prefix("next[") {
                let (k, lit) = rest.split_once("] (").expect("next[k] (lit)");
                let lit = lit.strip_suffix(')').unwrap();
                let (name, v) = split_literal(lit);
                ant.push((name, k.parse::<u32>().unwrap(), v));
            } else {
                let (name, v) = split_literal(part);
                ant.push((name, 0, v));
            }
        }
    }
    ant.sort();

    let (op, rest) = cons_s.split_once('[').expect("windowed consequent");
    let (window, lit) = rest.split_once("] (").expect("window then literal");
    let lit = lit.strip_suffix(')').unwrap();
    let (cname, cv) = split_literal(lit);
    let (shape, lo, hi) = match op {
        "next" => {
            let k: u32 = window.parse().unwrap();
            (Shape::Point, k, k)
        }
        "next_e" | "next_a" => {
            let (a, b) = window.split_once("..").expect("lo..hi window");
            let (a, b) = (a.parse::<u32>().unwrap(), b.parse::<u32>().unwrap());
            let shape = if op == "next_e" {
                Shape::Range
            } else {
                Shape::Repeat(b - a + 1)
            };
            (shape, a, b)
        }
        other => panic!("unknown PSL operator {other:?}"),
    };
    Norm {
        ant,
        cons: (cname, cv),
        lo,
        hi,
        shape,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn renderings_round_trip(
        raw_lits in prop::collection::vec((0u32..16, 0u32..8, prop::bool::ANY), 0..5),
        shape_raw in (0u32..4, 0u8..3, 1u32..4),
        value in prop::bool::ANY,
    ) {
        let (d, kind, span) = shape_raw;
        let m = module();
        let a = build(&m, &raw_lits, d, kind, span, value);

        // SVA: anchored at the earliest literal cycle.
        let (clock, sva) = parse_sva(&a.to_sva(&m));
        prop_assert_eq!(&clock, "clk");
        prop_assert_eq!(&sva, &expected(&m, &a, sva_base(&a)), "sva: {}", a.to_sva(&m));

        // LTL and PSL: absolute offsets.
        let want = expected(&m, &a, 0);
        prop_assert_eq!(&parse_ltl(&a.to_ltl(&m)), &want, "ltl: {}", a.to_ltl(&m));
        prop_assert_eq!(&parse_psl(&a.to_psl(&m)), &want, "psl: {}", a.to_psl(&m));
    }

    #[test]
    fn consequent_offsets_match_the_rendered_window(
        shape_raw in (0u8..3, 1u32..4, 0u32..4),
    ) {
        let (kind, span, d) = shape_raw;
        // With no antecedent literals every renderer is absolute, so the
        // parsed window must be exactly `consequent_offsets()`.
        let m = module();
        let a = build(&m, &[], d, kind, span, true);
        let offsets = a.consequent_offsets();
        for norm in [parse_sva(&a.to_sva(&m)).1, parse_ltl(&a.to_ltl(&m)), parse_psl(&a.to_psl(&m))] {
            prop_assert_eq!(norm.lo, *offsets.start());
            prop_assert_eq!(norm.hi, *offsets.end());
        }
    }
}

#[test]
fn empty_antecedent_renders_the_trivial_guard() {
    let m = module();
    let a = build(&m, &[], 1, 1, 2, true);
    assert_eq!(a.to_ltl(&m), "true => X F<=2 y");
    assert_eq!(a.to_psl(&m), "always ((true) -> next_e[1..3] (y));");
    assert_eq!(a.to_sva(&m), "@(posedge clk) 1 |-> ##[1:3] y;");
}

#[test]
fn same_offset_literals_group_without_a_zero_delay() {
    // Two literals in one cycle must share an SVA group (` && `), not be
    // separated by a spurious `##0`; negation binds to the bit atom.
    let m = module();
    let w = m.require("w").unwrap();
    let a = TemporalAssertion {
        literals: vec![
            (
                Feature {
                    signal: m.require("a").unwrap(),
                    bit: 0,
                    offset: 1,
                },
                true,
            ),
            (
                Feature {
                    signal: w,
                    bit: 3,
                    offset: 1,
                },
                false,
            ),
            (
                Feature {
                    signal: w,
                    bit: 0,
                    offset: 2,
                },
                true,
            ),
        ],
        target: Target {
            signal: m.require("y").unwrap(),
            bit: 0,
            offset: 2,
        },
        value: false,
        template: TemporalTemplate::Next { shift: 2 },
    };
    assert_eq!(
        a.to_sva(&m),
        "@(posedge clk) a && !w[3] ##1 w[0] |-> ##2 !y;"
    );
    assert_eq!(a.to_ltl(&m), "X a & X !w[3] & X X w[0] => X X X X !y");
    assert_eq!(
        a.to_psl(&m),
        "always ((next[1] (a) && next[1] (!w[3]) && next[2] (w[0])) -> next[4] (!y));"
    );
}

#[test]
fn precedence_survives_operator_nesting() {
    // A bounded operator applied under `X` nesting keeps its bound
    // attached to the operator, not the implication: `X G<=k lit`, with
    // the antecedent conjunction closed off before `=>`.
    let m = module();
    let raw = [(0, 0, true), (1, 1, false)];
    let a = build(&m, &raw, 1, 2, 3, false);
    let ltl = a.to_ltl(&m);
    let (ant, cons) = ltl.split_once(" => ").unwrap();
    assert_eq!(ant, "a & X !b");
    assert_eq!(cons, "X G<=3 !y");
    // And in PSL the whole antecedent sits inside its own parens.
    assert_eq!(
        a.to_psl(&m),
        "always ((a && next[1] (!b)) -> next_a[1..4] (!y));"
    );
}
