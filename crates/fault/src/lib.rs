//! Deterministic, seeded fault injection.
//!
//! Production code declares *fault points* — named sites where an
//! injected failure is plausible — by calling [`fire`]:
//!
//! ```ignore
//! if gm_fault::fire("cache.checkout_fail") {
//!     return Err(transient_checkout_error());
//! }
//! ```
//!
//! When no plan is armed, `fire` is a single relaxed atomic load (the
//! same pattern as `gm_trace`'s sink registry), so fault points can
//! stay compiled into release builds. A chaos test arms a seeded
//! [`FaultPlan`] for the whole process via [`arm`]; while the returned
//! [`FaultGuard`] lives, every matching `fire` call makes a
//! *deterministic* decision derived from the plan seed, the point name,
//! and that point's evaluation index — the same plan replays the same
//! faults regardless of wall clock.
//!
//! Each point tracks how many times it was evaluated and how many times
//! it fired ([`FaultGuard::report`]), so a chaos run can measure its
//! own falsification power: a sweep whose declared points never fired
//! did not actually test anything, and CI treats that as a failure.
//!
//! Arming is process-global and exclusive — tests that arm plans must
//! serialize (the chaos suite runs single-threaded and holds a shared
//! lock). [`arm`] replaces any previously armed plan; dropping the
//! guard disarms only if its own plan is still the active one.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Rates are expressed in parts-per-million of evaluations.
pub const PPM: u32 = 1_000_000;

/// Fast-path arming flag: non-zero while a plan is armed. One relaxed
/// load decides the common (disarmed) case.
static ARMED: AtomicUsize = AtomicUsize::new(0);

/// The armed plan. Guarded by a mutex on the slow path only.
static REGISTRY: Mutex<Option<Arc<PlanState>>> = Mutex::new(None);

/// One named fault point in a plan.
#[derive(Clone, Debug)]
struct PointSpec {
    name: String,
    /// Firing probability per evaluation, in parts-per-million.
    rate_ppm: u32,
    /// Firing budget; 0 = unlimited.
    max_fires: u64,
}

/// A seeded set of fault points to arm.
///
/// Decisions are a pure function of `(seed, point name, evaluation
/// index)`: the same plan against the same workload injects the same
/// faults. `rate_ppm = 1_000_000` fires on every evaluation (until the
/// `max_fires` budget runs out), which is the fully deterministic shape
/// chaos tests prefer.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    points: Vec<PointSpec>,
}

impl FaultPlan {
    /// An empty plan with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            points: Vec::new(),
        }
    }

    /// Adds a point firing at `rate_ppm` parts-per-million of
    /// evaluations, with no firing budget.
    #[must_use]
    pub fn point(self, name: &str, rate_ppm: u32) -> Self {
        self.point_limited(name, rate_ppm, 0)
    }

    /// Adds a point firing at `rate_ppm` with a total firing budget
    /// (`max_fires = 0` means unlimited). `point_limited(name, PPM, n)`
    /// fires on exactly the first `n` evaluations.
    #[must_use]
    pub fn point_limited(mut self, name: &str, rate_ppm: u32, max_fires: u64) -> Self {
        self.points.push(PointSpec {
            name: name.to_string(),
            rate_ppm: rate_ppm.min(PPM),
            max_fires,
        });
        self
    }

    /// The names of every declared point, in declaration order.
    pub fn names(&self) -> Vec<String> {
        self.points.iter().map(|p| p.name.clone()).collect()
    }
}

struct PointState {
    spec: PointSpec,
    evaluated: AtomicU64,
    fired: AtomicU64,
}

struct PlanState {
    seed: u64,
    points: Vec<PointState>,
}

/// Evaluation/trigger counters for one fault point, from
/// [`FaultGuard::report`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointReport {
    /// The point name.
    pub name: String,
    /// How many times a matching [`fire`] call was reached.
    pub evaluated: u64,
    /// How many of those evaluations injected the fault.
    pub fired: u64,
}

/// Keeps a plan armed; disarms on drop (unless another plan replaced
/// it first). Counters stay readable after disarming.
pub struct FaultGuard {
    state: Arc<PlanState>,
}

impl FaultGuard {
    /// Per-point evaluation/trigger counters, in declaration order.
    pub fn report(&self) -> Vec<PointReport> {
        self.state
            .points
            .iter()
            .map(|p| PointReport {
                name: p.spec.name.clone(),
                evaluated: p.evaluated.load(Ordering::Relaxed),
                fired: p.fired.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// How many times `point` fired under this plan (0 for undeclared
    /// points).
    pub fn fired(&self, point: &str) -> u64 {
        self.state
            .points
            .iter()
            .find(|p| p.spec.name == point)
            .map_or(0, |p| p.fired.load(Ordering::Relaxed))
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
        if reg
            .as_ref()
            .is_some_and(|active| Arc::ptr_eq(active, &self.state))
        {
            *reg = None;
            ARMED.store(0, Ordering::Relaxed);
        }
    }
}

/// Arms `plan` process-wide, replacing any armed plan. Fault decisions
/// flow while the returned guard lives.
pub fn arm(plan: FaultPlan) -> FaultGuard {
    let state = Arc::new(PlanState {
        seed: plan.seed,
        points: plan
            .points
            .into_iter()
            .map(|spec| PointState {
                spec,
                evaluated: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            })
            .collect(),
    });
    let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    *reg = Some(state.clone());
    ARMED.store(1, Ordering::Relaxed);
    FaultGuard { state }
}

/// Whether any plan is armed — one relaxed atomic load. `fire` performs
/// this check itself; use `enabled` only to skip *preparing* expensive
/// arguments for a fault site.
#[inline]
pub fn enabled() -> bool {
    ARMED.load(Ordering::Relaxed) != 0
}

/// Evaluates the named fault point: `true` means the caller should
/// inject its failure now. Disarmed cost is one relaxed atomic load.
#[inline]
pub fn fire(point: &str) -> bool {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return false;
    }
    fire_slow(point)
}

#[cold]
fn fire_slow(point: &str) -> bool {
    let state = REGISTRY
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let Some(state) = state else {
        return false;
    };
    let Some(p) = state.points.iter().find(|p| p.spec.name == point) else {
        return false;
    };
    let index = p.evaluated.fetch_add(1, Ordering::Relaxed);
    if p.spec.rate_ppm == 0 {
        return false;
    }
    let h = splitmix64(state.seed ^ fnv1a(point) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    if (h % u64::from(PPM)) >= u64::from(p.spec.rate_ppm) {
        return false;
    }
    // Budget check *after* the rate decision so a capped point fires on
    // its first `max_fires` rate hits, then stays quiet.
    let prior = p.fired.fetch_add(1, Ordering::Relaxed);
    if p.spec.max_fires != 0 && prior >= p.spec.max_fires {
        p.fired.fetch_sub(1, Ordering::Relaxed);
        return false;
    }
    true
}

/// FNV-1a over the point name — stable across runs, so the decision
/// stream per point is independent of declaration order.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64 finalizer — a cheap, well-mixed hash for the decision.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Arming is process-global: unit tests that arm plans serialize.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_fire_is_inert_and_free_of_state() {
        let _g = lock();
        assert!(!enabled());
        assert!(!fire("anything.at_all"));
    }

    #[test]
    fn full_rate_capped_point_fires_exactly_its_budget() {
        let _g = lock();
        let guard = arm(FaultPlan::new(7).point_limited("p.cap", PPM, 3));
        let fired = (0..10).filter(|_| fire("p.cap")).count();
        assert_eq!(fired, 3, "cap bounds total fires");
        let report = guard.report();
        assert_eq!(report[0].evaluated, 10);
        assert_eq!(report[0].fired, 3);
        assert_eq!(guard.fired("p.cap"), 3);
        assert_eq!(guard.fired("p.undeclared"), 0);
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_differ_across_seeds() {
        let _g = lock();
        let run = |seed: u64| -> Vec<bool> {
            let _guard = arm(FaultPlan::new(seed).point("p.rate", PPM / 2));
            (0..64).map(|_| fire("p.rate")).collect()
        };
        assert_eq!(run(1), run(1), "same seed replays the same stream");
        assert_ne!(run(1), run(2), "seeds decorrelate the streams");
        let hits = run(3).iter().filter(|&&f| f).count();
        assert!(
            (8..=56).contains(&hits),
            "half rate fires about half: {hits}"
        );
    }

    #[test]
    fn undeclared_points_never_fire_and_guard_drop_disarms() {
        let _g = lock();
        {
            let _guard = arm(FaultPlan::new(0).point("p.one", PPM));
            assert!(fire("p.one"));
            assert!(!fire("p.other"), "undeclared points stay quiet");
            assert!(enabled());
        }
        assert!(!enabled(), "guard drop disarms");
        assert!(!fire("p.one"));
    }

    #[test]
    fn rearming_replaces_the_plan_and_stale_guard_drop_is_inert() {
        let _g = lock();
        let first = arm(FaultPlan::new(0).point("p.a", PPM));
        let second = arm(FaultPlan::new(0).point("p.b", PPM));
        assert!(!fire("p.a"), "replaced plan no longer decides");
        assert!(fire("p.b"));
        drop(first);
        assert!(enabled(), "stale guard drop leaves the active plan armed");
        assert!(fire("p.b"));
        drop(second);
        assert!(!enabled());
    }

    #[test]
    fn zero_rate_points_count_evaluations_without_firing() {
        let _g = lock();
        let guard = arm(FaultPlan::new(9).point("p.idle", 0));
        for _ in 0..100 {
            assert!(!fire("p.idle"));
        }
        let report = guard.report();
        assert_eq!(report[0].evaluated, 100, "coverage is measured even idle");
        assert_eq!(report[0].fired, 0);
        assert_eq!(guard.report()[0].name, "p.idle");
        assert_eq!(
            arm(FaultPlan::new(0).point("a", 1).point_limited("b", 2, 3))
                .report()
                .len(),
            2
        );
    }
}
