//! Random 3-SAT property tests: the CDCL solver against brute-force
//! assignment enumeration (≤ 16 variables), plus DIMACS parse/print
//! round trips.

use gm_sat::{parse_dimacs, to_dimacs, DimacsInstance, SolveResult};
use proptest::prelude::*;

/// Brute-force satisfiability by full assignment enumeration.
fn brute_force(num_vars: usize, clauses: &[Vec<i32>]) -> bool {
    assert!(num_vars <= 16, "enumeration bound");
    'outer: for m in 0u32..(1 << num_vars) {
        for c in clauses {
            let sat = c.iter().any(|&x| {
                let v = (m >> (x.unsigned_abs() - 1)) & 1 == 1;
                if x > 0 {
                    v
                } else {
                    !v
                }
            });
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

/// Folds raw literals into the range `[-num_vars, num_vars] \ {0}`.
fn clip(raw: Vec<Vec<i32>>, num_vars: usize) -> Vec<Vec<i32>> {
    raw.into_iter()
        .map(|c| {
            c.into_iter()
                .map(|x| {
                    let v = ((x.unsigned_abs() as usize - 1) % num_vars) as i32 + 1;
                    if x > 0 {
                        v
                    } else {
                        -v
                    }
                })
                .collect()
        })
        .collect()
}

/// A literal over variables `1..=16`, either polarity.
fn literal() -> impl Strategy<Value = i32> {
    (1i32..=16, prop::bool::ANY).prop_map(|(v, neg)| if neg { -v } else { v })
}

/// An exactly-3-literal clause.
fn clause3() -> impl Strategy<Value = Vec<i32>> {
    prop::collection::vec(literal(), 3..=3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Random 3-SAT vs exhaustive enumeration, up to 16 variables.
    #[test]
    fn three_sat_agrees_with_brute_force(
        num_vars in 3usize..=16,
        raw in prop::collection::vec(clause3(), 1..60),
    ) {
        let clauses = clip(raw, num_vars);
        for c in &clauses {
            prop_assert_eq!(c.len(), 3, "3-SAT clause width");
        }
        let inst = DimacsInstance { num_vars, clauses: clauses.clone() };
        let (mut solver, _) = inst.into_solver();
        let got = solver.solve() == SolveResult::Sat;
        let expect = brute_force(num_vars, &clauses);
        prop_assert_eq!(got, expect, "solver disagrees on {:?}", clauses);
        if got {
            prop_assert!(solver.model_satisfies_all(), "model violates a clause");
        }
    }

    /// print . parse is the identity on instances whose declared
    /// variable count covers every literal.
    #[test]
    fn dimacs_print_parse_round_trip(
        num_vars in 1usize..=16,
        raw in prop::collection::vec(clause3(), 0..40),
    ) {
        let clauses = clip(raw, num_vars);
        let inst = DimacsInstance { num_vars, clauses };
        let text = to_dimacs(&inst);
        let back = parse_dimacs(&text).unwrap();
        prop_assert_eq!(&back, &inst, "round trip changed the instance");
        // A second trip is a fixed point at the text level too.
        prop_assert_eq!(to_dimacs(&back), text);
    }

    /// Round-tripping preserves satisfiability (belt over the
    /// structural-equality suspenders).
    #[test]
    fn dimacs_round_trip_preserves_satisfiability(
        num_vars in 2usize..=10,
        raw in prop::collection::vec(clause3(), 1..30),
    ) {
        let clauses = clip(raw, num_vars);
        let inst = DimacsInstance { num_vars, clauses };
        let back = parse_dimacs(&to_dimacs(&inst)).unwrap();
        let (mut s1, _) = inst.into_solver();
        let (mut s2, _) = back.into_solver();
        prop_assert_eq!(s1.solve(), s2.solve());
    }
}

#[test]
fn dimacs_round_trip_with_comments_and_blank_lines() {
    let src =
        "c random 3-sat fixture\nc second comment\n\np cnf 4 3\n1 -2 3 0\n-1 2 -4 0\n2 3 4 0\n";
    let inst = parse_dimacs(src).unwrap();
    assert_eq!(inst.num_vars, 4);
    assert_eq!(inst.clauses.len(), 3);
    let back = parse_dimacs(&to_dimacs(&inst)).unwrap();
    assert_eq!(back, inst);
}

#[test]
fn known_unsat_three_sat_instance() {
    // All eight polarity combinations over {1,2,3}: unsatisfiable, and
    // every clause has width 3.
    let clauses: Vec<Vec<i32>> = (0..8)
        .map(|m| {
            (1..=3)
                .map(|v| if (m >> (v - 1)) & 1 == 1 { -v } else { v })
                .collect()
        })
        .collect();
    assert!(!brute_force(3, &clauses));
    let inst = DimacsInstance {
        num_vars: 3,
        clauses,
    };
    let (mut solver, _) = inst.into_solver();
    assert_eq!(solver.solve(), SolveResult::Unsat);
}
