//! Property tests: the CDCL solver against brute-force enumeration.

use gm_sat::{DimacsInstance, SolveResult, Solver, Var};
use proptest::prelude::*;

/// Brute-force satisfiability over at most 16 variables.
fn brute_force(num_vars: usize, clauses: &[Vec<i32>]) -> bool {
    assert!(num_vars <= 16);
    'outer: for m in 0u32..(1 << num_vars) {
        for c in clauses {
            let sat = c.iter().any(|&x| {
                let v = (m >> (x.unsigned_abs() - 1)) & 1 == 1;
                if x > 0 {
                    v
                } else {
                    !v
                }
            });
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn clause_strategy(num_vars: i32) -> impl Strategy<Value = Vec<i32>> {
    prop::collection::vec(
        (1..=num_vars, prop::bool::ANY).prop_map(|(v, neg)| if neg { -v } else { v }),
        1..=3,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn agrees_with_brute_force(
        num_vars in 1usize..10,
        seed_clauses in prop::collection::vec(clause_strategy(9), 1..40)
    ) {
        // Clip literals to the variable range.
        let clauses: Vec<Vec<i32>> = seed_clauses
            .into_iter()
            .map(|c| {
                c.into_iter()
                    .map(|x| {
                        let v = ((x.unsigned_abs() as usize - 1) % num_vars) as i32 + 1;
                        if x > 0 { v } else { -v }
                    })
                    .collect()
            })
            .collect();
        let inst = DimacsInstance { num_vars, clauses: clauses.clone() };
        let (mut solver, _) = inst.into_solver();
        let got = solver.solve() == SolveResult::Sat;
        let expect = brute_force(num_vars, &clauses);
        prop_assert_eq!(got, expect, "clauses: {:?}", clauses);
        if got {
            prop_assert!(solver.model_satisfies_all(), "model check failed");
        }
    }

    #[test]
    fn assumptions_match_added_units(
        num_vars in 2usize..8,
        seed_clauses in prop::collection::vec(clause_strategy(7), 1..25),
        assumed in prop::collection::vec((1i32..8, prop::bool::ANY), 1..4)
    ) {
        let clauses: Vec<Vec<i32>> = seed_clauses
            .into_iter()
            .map(|c| {
                c.into_iter()
                    .map(|x| {
                        let v = ((x.unsigned_abs() as usize - 1) % num_vars) as i32 + 1;
                        if x > 0 { v } else { -v }
                    })
                    .collect()
            })
            .collect();
        let assumed: Vec<i32> = assumed
            .into_iter()
            .map(|(v, neg)| {
                let v = ((v as usize - 1) % num_vars) as i32 + 1;
                if neg { -v } else { v }
            })
            .collect();

        // Solving under assumptions ...
        let inst = DimacsInstance { num_vars, clauses: clauses.clone() };
        let (mut s1, vars) = inst.into_solver();
        let lits: Vec<_> = assumed
            .iter()
            .map(|&x| vars[x.unsigned_abs() as usize - 1].lit(x > 0))
            .collect();
        let under_assumptions = s1.solve_with_assumptions(&lits);

        // ... must agree with solving with the assumptions as unit clauses.
        let mut with_units = clauses.clone();
        for &x in &assumed {
            with_units.push(vec![x]);
        }
        let expect = brute_force(num_vars, &with_units);
        prop_assert_eq!(under_assumptions == SolveResult::Sat, expect);

        // And the solver must remain reusable afterwards.
        let baseline = brute_force(num_vars, &clauses);
        prop_assert_eq!(s1.solve() == SolveResult::Sat, baseline);
    }
}

#[test]
fn pigeonhole_scaling_stays_unsat() {
    // PHP(n+1, n) for a few sizes: classic hard UNSAT family.
    for n in 2..=5usize {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..=n)
            .map(|_| (0..n).map(|_| s.new_var()).collect())
            .collect();
        for row in &p {
            let c: Vec<_> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&c);
        }
        #[allow(clippy::needless_range_loop)] // j spans two rows at once
        for j in 0..n {
            for i1 in 0..=n {
                for i2 in (i1 + 1)..=n {
                    s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat, "PHP({}, {n})", n + 1);
    }
}
