//! # gm-sat — a CDCL SAT solver
//!
//! The decision-procedure substrate for the GoldMine reproduction's
//! formal-verification engine (the paper used SMV and a commercial model
//! checker; we build the checker from scratch on top of this solver).
//!
//! Features: two-watched-literal propagation, first-UIP clause learning
//! with cheap minimization, VSIDS decision ordering with phase saving,
//! Luby restarts, incremental solving under assumptions, a Tseitin gate
//! encoder ([`Tseitin`]) and DIMACS import/export.
//!
//! # Examples
//!
//! ```
//! use gm_sat::{Solver, SolveResult, Tseitin};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var().positive();
//! let b = solver.new_var().positive();
//! let mut enc = Tseitin::new(&mut solver);
//! let out = enc.xor(a, b);
//! enc.assert_lit(out);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_ne!(solver.model_value(a), solver.model_value(b));
//! ```

#![warn(missing_docs)]

mod cnf;
mod dimacs;
mod heap;
mod lit;
mod solver;

pub use cnf::Tseitin;
pub use dimacs::{parse_dimacs, to_dimacs, DimacsInstance};
pub use lit::{Lit, Var};
pub use solver::{SolveResult, Solver, SolverStats};
