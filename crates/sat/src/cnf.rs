//! Tseitin encoding helpers on top of [`Solver`].
//!
//! The model checker encodes and-inverter graphs through this interface;
//! each gate constructor returns a literal equivalent to the gate output
//! and adds the defining clauses. Constant folding and trivial-operand
//! simplifications keep the CNF small.

use crate::lit::Lit;
use crate::solver::Solver;

/// A gate-level CNF builder with a designated constant-true literal.
#[derive(Debug)]
pub struct Tseitin<'s> {
    solver: &'s mut Solver,
    true_lit: Lit,
}

impl<'s> Tseitin<'s> {
    /// Wraps a solver, allocating (once) a constant-true variable.
    pub fn new(solver: &'s mut Solver) -> Self {
        let t = solver.new_var().positive();
        solver.add_clause(&[t]);
        Tseitin {
            solver,
            true_lit: t,
        }
    }

    /// The constant-true literal.
    pub fn lit_true(&self) -> Lit {
        self.true_lit
    }

    /// The constant-false literal.
    pub fn lit_false(&self) -> Lit {
        !self.true_lit
    }

    /// A constant literal from a boolean.
    pub fn constant(&self, b: bool) -> Lit {
        if b {
            self.true_lit
        } else {
            !self.true_lit
        }
    }

    /// A fresh unconstrained literal (positive polarity).
    pub fn fresh(&mut self) -> Lit {
        self.solver.new_var().positive()
    }

    /// Access to the underlying solver (for adding ad-hoc clauses).
    pub fn solver(&mut self) -> &mut Solver {
        self.solver
    }

    /// Asserts `lit` true.
    pub fn assert_lit(&mut self, lit: Lit) {
        self.solver.add_clause(&[lit]);
    }

    /// `out <-> a & b`, with simplifications.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.lit_false() || b == self.lit_false() || a == !b {
            return self.lit_false();
        }
        if a == self.true_lit {
            return b;
        }
        if b == self.true_lit || a == b {
            return a;
        }
        let out = self.fresh();
        self.solver.add_clause(&[!out, a]);
        self.solver.add_clause(&[!out, b]);
        self.solver.add_clause(&[out, !a, !b]);
        out
    }

    /// `out <-> a | b` via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// `out <-> a ^ b`, with simplifications.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.true_lit {
            return !b;
        }
        if a == self.lit_false() {
            return b;
        }
        if b == self.true_lit {
            return !a;
        }
        if b == self.lit_false() {
            return a;
        }
        if a == b {
            return self.lit_false();
        }
        if a == !b {
            return self.true_lit;
        }
        let out = self.fresh();
        self.solver.add_clause(&[!out, a, b]);
        self.solver.add_clause(&[!out, !a, !b]);
        self.solver.add_clause(&[out, !a, b]);
        self.solver.add_clause(&[out, a, !b]);
        out
    }

    /// `out <-> (c ? t : e)`.
    pub fn ite(&mut self, c: Lit, t: Lit, e: Lit) -> Lit {
        if c == self.true_lit {
            return t;
        }
        if c == self.lit_false() {
            return e;
        }
        if t == e {
            return t;
        }
        let ct = self.and(c, t);
        let ce = self.and(!c, e);
        self.or(ct, ce)
    }

    /// `out <-> (a <-> b)`.
    pub fn iff(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Conjunction of many literals (true for the empty set).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.true_lit;
        for &l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// Disjunction of many literals (false for the empty set).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.lit_false();
        for &l in lits {
            acc = self.or(acc, l);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    /// Exhaustively checks a 2-input gate builder against a reference fn.
    fn check_gate(
        build: impl Fn(&mut Tseitin<'_>, Lit, Lit) -> Lit,
        reference: fn(bool, bool) -> bool,
    ) {
        for va in [false, true] {
            for vb in [false, true] {
                let mut s = Solver::new();
                let a = s.new_var().positive();
                let b = s.new_var().positive();
                let mut t = Tseitin::new(&mut s);
                let out = build(&mut t, a, b);
                let expect = reference(va, vb);
                let assumptions = [a.var().lit(va), b.var().lit(vb)];
                assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Sat);
                assert_eq!(s.model_value(out), expect, "inputs {va},{vb}");
                // The opposite output value must be unsat.
                let mut with_out = assumptions.to_vec();
                with_out.push(if expect { !out } else { out });
                assert_eq!(
                    s.solve_with_assumptions(&with_out),
                    SolveResult::Unsat,
                    "gate output must be functionally determined"
                );
            }
        }
    }

    #[test]
    fn and_gate_truth_table() {
        check_gate(|t, a, b| t.and(a, b), |a, b| a && b);
    }

    #[test]
    fn or_gate_truth_table() {
        check_gate(|t, a, b| t.or(a, b), |a, b| a || b);
    }

    #[test]
    fn xor_gate_truth_table() {
        check_gate(|t, a, b| t.xor(a, b), |a, b| a ^ b);
    }

    #[test]
    fn iff_gate_truth_table() {
        check_gate(|t, a, b| t.iff(a, b), |a, b| a == b);
    }

    #[test]
    fn ite_truth_table() {
        for vc in [false, true] {
            for vt in [false, true] {
                for ve in [false, true] {
                    let mut s = Solver::new();
                    let c = s.new_var().positive();
                    let tt = s.new_var().positive();
                    let e = s.new_var().positive();
                    let mut ts = Tseitin::new(&mut s);
                    let out = ts.ite(c, tt, e);
                    let assumptions = [c.var().lit(vc), tt.var().lit(vt), e.var().lit(ve)];
                    assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Sat);
                    assert_eq!(s.model_value(out), if vc { vt } else { ve });
                }
            }
        }
    }

    #[test]
    fn constant_simplifications() {
        let mut s = Solver::new();
        let a = s.new_var().positive();
        let mut t = Tseitin::new(&mut s);
        let tru = t.lit_true();
        let fls = t.lit_false();
        assert_eq!(t.and(a, tru), a);
        assert_eq!(t.and(a, fls), fls);
        assert_eq!(t.and(a, a), a);
        assert_eq!(t.and(a, !a), fls);
        assert_eq!(t.or(a, fls), a);
        assert_eq!(t.or(a, tru), tru);
        assert_eq!(t.xor(a, fls), a);
        assert_eq!(t.xor(a, tru), !a);
        assert_eq!(t.xor(a, a), fls);
        assert_eq!(t.ite(tru, a, fls), a);
        let before = t.solver().num_clauses();
        let _ = t.and_many(&[tru, tru, tru]);
        assert_eq!(t.solver().num_clauses(), before, "no clauses for constants");
    }

    #[test]
    fn and_or_many() {
        let mut s = Solver::new();
        let vars: Vec<Lit> = (0..4).map(|_| s.new_var().positive()).collect();
        let mut t = Tseitin::new(&mut s);
        let all = t.and_many(&vars);
        let any = t.or_many(&vars);
        let mut assumptions: Vec<Lit> = vars.iter().map(|l| !*l).collect();
        assumptions.push(any);
        assert_eq!(
            s.solve_with_assumptions(&assumptions),
            SolveResult::Unsat,
            "or of all-false inputs cannot be true"
        );
        let mut assumptions: Vec<Lit> = vars.clone();
        assumptions.push(!all);
        assert_eq!(
            s.solve_with_assumptions(&assumptions),
            SolveResult::Unsat,
            "and of all-true inputs cannot be false"
        );
    }
}
