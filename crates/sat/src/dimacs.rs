//! DIMACS CNF import/export, for interoperability and test corpora.

use crate::lit::{Lit, Var};
use crate::solver::Solver;
use std::fmt::Write as _;

/// A parsed DIMACS instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimacsInstance {
    /// Declared variable count.
    pub num_vars: usize,
    /// Clauses as signed 1-based variable indices.
    pub clauses: Vec<Vec<i32>>,
}

impl DimacsInstance {
    /// Loads the instance into a fresh solver, returning the solver and
    /// the variable table (index `i` holds DIMACS variable `i + 1`).
    pub fn into_solver(&self) -> (Solver, Vec<Var>) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..self.num_vars).map(|_| solver.new_var()).collect();
        for clause in &self.clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&x| vars[x.unsigned_abs() as usize - 1].lit(x > 0))
                .collect();
            solver.add_clause(&lits);
        }
        (solver, vars)
    }
}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns a description of the first malformed line. Comments (`c`) and
/// the problem line (`p cnf V C`) are handled; literals beyond the
/// declared variable count grow the instance rather than failing.
pub fn parse_dimacs(src: &str) -> Result<DimacsInstance, String> {
    let mut num_vars = 0usize;
    let mut clauses = Vec::new();
    let mut current: Vec<i32> = Vec::new();
    for (lineno, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let mut it = rest.split_whitespace();
            if it.next() != Some("cnf") {
                return Err(format!("line {}: expected `p cnf`", lineno + 1));
            }
            num_vars = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("line {}: bad variable count", lineno + 1))?;
            continue;
        }
        for tok in line.split_whitespace() {
            let x: i32 = tok
                .parse()
                .map_err(|_| format!("line {}: bad literal `{tok}`", lineno + 1))?;
            if x == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                num_vars = num_vars.max(x.unsigned_abs() as usize);
                current.push(x);
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    Ok(DimacsInstance { num_vars, clauses })
}

/// Renders an instance as DIMACS CNF text.
pub fn to_dimacs(instance: &DimacsInstance) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "p cnf {} {}",
        instance.num_vars,
        instance.clauses.len()
    );
    for c in &instance.clauses {
        for x in c {
            let _ = write!(out, "{x} ");
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn parse_and_solve_roundtrip() {
        let src = "c a tiny instance\np cnf 3 3\n1 2 0\n-1 3 0\n-3 0\n";
        let inst = parse_dimacs(src).unwrap();
        assert_eq!(inst.num_vars, 3);
        assert_eq!(inst.clauses.len(), 3);
        let (mut s, vars) = inst.into_solver();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(!s.model_var(vars[2]), "x3 forced false");
        assert!(s.model_var(vars[1]) || s.model_var(vars[0]));
        let back = parse_dimacs(&to_dimacs(&inst)).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn clauses_spanning_lines() {
        let inst = parse_dimacs("p cnf 2 1\n1\n-2\n0\n").unwrap();
        assert_eq!(inst.clauses, vec![vec![1, -2]]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_dimacs("p cnf x y\n").is_err());
        assert!(parse_dimacs("1 two 0\n").is_err());
    }
}
