//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The dense index of the variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a variable from a dense index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Var(i as u32)
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// A literal of this variable with the given sign (`true` = positive).
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `var << 1 | negated`, the MiniSat convention, so literals
/// index watch lists directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The literal's variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive (non-negated).
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index (distinct for each polarity), suitable for watch lists.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from [`Lit::index`].
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Lit(i as u32)
    }

    /// The truth value this literal assigns to its variable when true.
    #[inline]
    pub fn sign_value(self) -> bool {
        self.is_positive()
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "~x{}", self.var().0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrips() {
        let v = Var::from_index(7);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(v.positive().is_positive());
        assert!(!v.negative().is_positive());
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!!v.positive(), v.positive());
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }

    #[test]
    fn indices_are_dense_and_distinct() {
        let a = Var::from_index(0);
        let b = Var::from_index(1);
        let idx: Vec<usize> = [a.positive(), a.negative(), b.positive(), b.negative()]
            .iter()
            .map(|l| l.index())
            .collect();
        assert_eq!(idx, vec![0, 1, 2, 3]);
        assert_eq!(Lit::from_index(3), b.negative());
    }

    #[test]
    fn display_is_readable() {
        let v = Var::from_index(3);
        assert_eq!(v.positive().to_string(), "x3");
        assert_eq!(v.negative().to_string(), "~x3");
    }
}
