//! The CDCL solver.
//!
//! A MiniSat-style conflict-driven clause-learning solver: two-watched
//! literals, first-UIP learning with recursive-lite minimization, VSIDS
//! decision order, phase saving and Luby restarts. Supports incremental
//! use (adding clauses between solves) and solving under assumptions —
//! exactly what the bounded-model-checking loop in `gm-mc` needs.

use crate::heap::VarOrder;
use crate::lit::{Lit, Var};

/// Result of a satisfiability query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment exists (read it via [`Solver::model_value`]).
    Sat,
    /// No satisfying assignment exists (under the given assumptions).
    Unsat,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
}

/// Solver statistics.
///
/// Cumulative over the solver's lifetime; subtract two snapshots (the
/// [`std::ops::Sub`] impl saturates) to get the cost of the calls in
/// between, or read [`Solver::last_call_stats`] for the most recent
/// solve alone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learnt.
    pub learnt: u64,
}

impl std::ops::Sub for SolverStats {
    type Output = SolverStats;

    fn sub(self, rhs: SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts.saturating_sub(rhs.conflicts),
            decisions: self.decisions.saturating_sub(rhs.decisions),
            propagations: self.propagations.saturating_sub(rhs.propagations),
            restarts: self.restarts.saturating_sub(rhs.restarts),
            learnt: self.learnt.saturating_sub(rhs.learnt),
        }
    }
}

impl std::ops::Add for SolverStats {
    type Output = SolverStats;

    fn add(self, rhs: SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts + rhs.conflicts,
            decisions: self.decisions + rhs.decisions,
            propagations: self.propagations + rhs.propagations,
            restarts: self.restarts + rhs.restarts,
            learnt: self.learnt + rhs.learnt,
        }
    }
}

impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        *self = *self + rhs;
    }
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use gm_sat::{Solver, SolveResult};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.positive(), b.positive()]);
/// s.add_clause(&[a.negative()]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert!(s.model_value(b.positive()));
/// s.add_clause(&[b.negative()]);
/// assert_eq!(s.solve(), SolveResult::Unsat);
/// ```
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// For each literal index, the clauses watching that literal.
    watches: Vec<Vec<u32>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    phase: Vec<bool>,
    seen: Vec<bool>,
    unsat: bool,
    stats: SolverStats,
    last_call: SolverStats,
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const RESCALE_LIMIT: f64 = 1e100;
const RESTART_BASE: u64 = 64;

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: VarOrder::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            unsat: false,
            stats: SolverStats::default(),
            last_call: SolverStats::default(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assign.len());
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v, &self.activity);
        v
    }

    /// The number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// The number of clauses (original plus learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Solver statistics so far (cumulative over the solver's lifetime).
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// The stats delta of the most recent [`Solver::solve`] /
    /// [`Solver::solve_with_assumptions`] call alone — the per-query
    /// cost an incremental caller wants to attribute to one property.
    pub fn last_call_stats(&self) -> SolverStats {
        self.last_call
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        match self.assign[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause.
    ///
    /// Adding a clause invalidates any model from a previous solve (the
    /// solver backtracks to level 0). Tautologies are dropped; the empty
    /// clause marks the instance unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.backtrack(0);
        if self.unsat {
            return;
        }
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l} references an unallocated variable"
            );
            match self.lit_value(l) {
                LBool::True => return, // already satisfied at level 0
                LBool::False if self.level[l.var().index()] == 0 => continue,
                _ => {}
            }
            if c.contains(&!l) {
                return; // tautology
            }
            if !c.contains(&l) {
                c.push(l);
            }
        }
        match c.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(c[0], None) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[c[0].index()].push(ci);
                self.watches[c[1].index()].push(ci);
                self.clauses.push(Clause { lits: c });
            }
        }
    }

    /// Enqueues `lit` as true; returns false on immediate conflict.
    fn enqueue(&mut self, lit: Lit, reason: Option<u32>) -> bool {
        match self.lit_value(lit) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                let v = lit.var().index();
                self.assign[v] = if lit.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                };
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(lit);
                true
            }
        }
    }

    /// Unit propagation; returns the index of a conflicting clause.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let watchers = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut kept = Vec::with_capacity(watchers.len());
            let mut conflict = None;
            let mut wi = 0;
            while wi < watchers.len() {
                let ci = watchers[wi];
                wi += 1;
                // Normalize: the false literal sits at position 1.
                if self.clauses[ci as usize].lits[0] == false_lit {
                    self.clauses[ci as usize].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci as usize].lits[1], false_lit);
                let first = self.clauses[ci as usize].lits[0];
                if self.lit_value(first) == LBool::True {
                    kept.push(ci);
                    continue;
                }
                // Look for a non-false replacement watch.
                let mut moved = false;
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci as usize].lits[k];
                    if self.lit_value(lk) != LBool::False {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[lk.index()].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting under the current trail.
                kept.push(ci);
                if self.lit_value(first) == LBool::False {
                    // Conflict: retain the rest of the watch list.
                    kept.extend_from_slice(&watchers[wi..]);
                    conflict = Some(ci);
                    break;
                }
                let ok = self.enqueue(first, Some(ci));
                debug_assert!(ok);
            }
            self.watches[false_lit.index()] = kept;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_index(0)]; // slot 0 = UIP
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;
        let current = self.decision_level();

        loop {
            let clause = &self.clauses[confl as usize];
            let start = usize::from(p.is_some());
            let qs: Vec<Lit> = clause.lits[start..].to_vec();
            for q in qs {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            confl = self.reason[pl.var().index()].expect("resolved literal has a reason");
            p = Some(pl);
        }

        // Cheap clause minimization: drop literals whose entire reason is
        // already in the learnt clause (or fixed at level 0).
        let mut minimized = vec![learnt[0]];
        'lits: for &q in &learnt[1..] {
            if let Some(r) = self.reason[q.var().index()] {
                for &rl in &self.clauses[r as usize].lits {
                    if rl.var() == q.var() {
                        continue;
                    }
                    if !self.seen[rl.var().index()] && self.level[rl.var().index()] > 0 {
                        minimized.push(q);
                        continue 'lits;
                    }
                }
                // Redundant: implied by the other learnt literals.
            } else {
                minimized.push(q);
            }
        }
        for l in &minimized[1..] {
            debug_assert!(self.seen[l.var().index()]);
        }
        for l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }
        let mut learnt = minimized;

        // Compute backtrack level: the highest level below the current one.
        let blevel = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, blevel)
    }

    /// Undoes decisions above `target` level.
    fn backtrack(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        while self.trail.len() > bound {
            let l = self.trail.pop().unwrap();
            let v = l.var();
            self.phase[v.index()] = self.assign[v.index()] == LBool::True;
            self.assign[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>) {
        self.stats.learnt += 1;
        if learnt.len() == 1 {
            let ok = self.enqueue(learnt[0], None);
            debug_assert!(ok);
            return;
        }
        let ci = self.clauses.len() as u32;
        self.watches[learnt[0].index()].push(ci);
        self.watches[learnt[1].index()].push(ci);
        let assert_lit = learnt[0];
        self.clauses.push(Clause { lits: learnt });
        let ok = self.enqueue(assert_lit, Some(ci));
        debug_assert!(ok);
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assign[v.index()] == LBool::Undef {
                return Some(v.lit(self.phase[v.index()]));
            }
        }
        None
    }

    /// Solves the instance with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under `assumptions` (literals forced true for this call).
    ///
    /// `Unsat` means the clauses are unsatisfiable *together with* the
    /// assumptions; the clause database — including every clause learnt
    /// during this call — remains usable afterwards, which is what makes
    /// back-to-back property queries against one unrolling cheap.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        let before = self.stats;
        let res = self.solve_inner(assumptions);
        self.last_call = self.stats - before;
        res
    }

    fn solve_inner(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.unsat {
            return SolveResult::Unsat;
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveResult::Unsat;
        }
        let mut conflicts_until_restart = RESTART_BASE * luby(self.stats.restarts + 1);
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SolveResult::Unsat;
                }
                let (learnt, blevel) = self.analyze(confl);
                self.backtrack(blevel);
                self.record_learnt(learnt);
                self.var_inc *= VAR_DECAY;
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
            } else {
                if conflicts_until_restart == 0 {
                    self.stats.restarts += 1;
                    conflicts_until_restart = RESTART_BASE * luby(self.stats.restarts + 1);
                    self.backtrack(0);
                    continue;
                }
                // Extend with assumptions first.
                let dl = self.decision_level() as usize;
                let next = if dl < assumptions.len() {
                    let p = assumptions[dl];
                    if p.var().index() >= self.num_vars() {
                        panic!("assumption {p} references an unallocated variable");
                    }
                    match self.lit_value(p) {
                        LBool::True => {
                            self.trail_lim.push(self.trail.len());
                            continue;
                        }
                        LBool::False => {
                            self.backtrack(0);
                            return SolveResult::Unsat;
                        }
                        LBool::Undef => Some(p),
                    }
                } else {
                    self.pick_branch()
                };
                match next {
                    None => return SolveResult::Sat,
                    Some(p) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(p, None);
                        debug_assert!(ok);
                    }
                }
            }
        }
    }

    /// The model value of a literal after a `Sat` answer.
    ///
    /// Unconstrained variables read as their saved phase (deterministic).
    pub fn model_value(&self, lit: Lit) -> bool {
        match self.lit_value(lit) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => {
                // Unassigned after SAT: any value satisfies; use phase.
                self.phase[lit.var().index()] == lit.is_positive()
            }
        }
    }

    /// The model value of a variable after a `Sat` answer.
    pub fn model_var(&self, var: Var) -> bool {
        self.model_value(var.positive())
    }

    /// Verifies that the current assignment satisfies every clause
    /// (diagnostic; used by tests).
    pub fn model_satisfies_all(&self) -> bool {
        self.clauses
            .iter()
            .all(|c| c.lits.iter().any(|&l| self.model_value(l)))
    }
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
fn luby(mut i: u64) -> u64 {
    loop {
        // Find k with 2^k - 1 >= i.
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut Solver, vars: &mut Vec<Var>, x: i32) -> Lit {
        let idx = x.unsigned_abs() as usize - 1;
        while vars.len() <= idx {
            vars.push(s.new_var());
        }
        vars[idx].lit(x > 0)
    }

    fn add(s: &mut Solver, vars: &mut Vec<Var>, clause: &[i32]) {
        let c: Vec<Lit> = clause.iter().map(|&x| lit(s, vars, x)).collect();
        s.add_clause(&c);
    }

    #[test]
    fn luby_sequence() {
        let seq: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn trivial_sat_unsat() {
        let mut s = Solver::new();
        let mut v = Vec::new();
        add(&mut s, &mut v, &[1, 2]);
        add(&mut s, &mut v, &[-1]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(v[1].positive()));
        assert!(s.model_satisfies_all());
        add(&mut s, &mut v, &[-2]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause(&[]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn chain_propagation() {
        // x1 & (x_i -> x_{i+1}) chain forces everything true.
        let mut s = Solver::new();
        let mut v = Vec::new();
        add(&mut s, &mut v, &[1]);
        for i in 1..50 {
            add(&mut s, &mut v, &[-i, i + 1]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for var in &v {
            assert!(s.model_var(*var));
        }
    }

    #[test]
    fn pigeonhole_4_into_3_is_unsat() {
        // p(i,j): pigeon i in hole j. Each pigeon somewhere; no two share.
        let mut s = Solver::new();
        let n = 4;
        let m = 3;
        let mut p = vec![vec![Var::from_index(0); m]; n];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            let c: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&c);
        }
        #[allow(clippy::needless_range_loop)] // j spans two rows at once
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        assert_eq!(
            s.solve_with_assumptions(&[a.negative(), b.negative()]),
            SolveResult::Unsat
        );
        // Same instance without assumptions is still satisfiable.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.solve_with_assumptions(&[a.negative()]), SolveResult::Sat);
        assert!(s.model_value(b.positive()));
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..8).map(|_| s.new_var()).collect();
        // At-least-one.
        let c: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        s.add_clause(&c);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Incrementally forbid each variable; stays SAT until all gone.
        for (i, v) in vars.iter().enumerate() {
            s.add_clause(&[v.negative()]);
            let expect = if i + 1 < vars.len() {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(s.solve(), expect, "after forbidding {} vars", i + 1);
        }
    }

    #[test]
    fn last_call_stats_are_per_call_deltas() {
        let mut s = Solver::new();
        let mut v = Vec::new();
        // A small UNSAT core reachable only through conflicts.
        add(&mut s, &mut v, &[1, 2]);
        add(&mut s, &mut v, &[1, -2]);
        add(&mut s, &mut v, &[-1, 2]);
        add(&mut s, &mut v, &[-1, -2]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let first = s.last_call_stats();
        assert_eq!(first, s.stats());
        assert!(first.conflicts > 0 || first.propagations > 0);
        // A second (immediately unsat) call costs nothing extra, and the
        // delta reflects only that call.
        assert_eq!(s.solve(), SolveResult::Unsat);
        let second = s.last_call_stats();
        assert_eq!(second, SolverStats::default());
        assert_eq!(s.stats(), first + second);
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), a.positive(), b.positive()]);
        s.add_clause(&[a.positive(), a.negative()]); // tautology: dropped
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn xor_chain_forces_unique_solution() {
        // (a xor b) & (b xor c) & a  => b = !a, c = !b.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let xor = |s: &mut Solver, x: Var, y: Var| {
            s.add_clause(&[x.positive(), y.positive()]);
            s.add_clause(&[x.negative(), y.negative()]);
        };
        xor(&mut s, a, b);
        xor(&mut s, b, c);
        s.add_clause(&[a.positive()]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_var(a));
        assert!(!s.model_var(b));
        assert!(s.model_var(c));
    }
}
