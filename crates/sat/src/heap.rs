//! Indexed max-heap over variable activities (the VSIDS order).

use crate::lit::Var;

/// A binary max-heap of variables keyed by an external activity array,
/// with O(log n) insert/remove and O(1) membership queries.
#[derive(Clone, Debug, Default)]
pub struct VarOrder {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarOrder {
    /// Creates an empty order.
    pub fn new() -> Self {
        VarOrder::default()
    }

    /// Grows internal tables to cover `n` variables.
    pub fn grow(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
        }
    }

    /// Whether `v` is currently queued.
    pub fn contains(&self, v: Var) -> bool {
        self.pos.get(v.index()).is_some_and(|&p| p != ABSENT)
    }

    /// Inserts `v` if absent.
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.grow(v.index() + 1);
        if self.contains(v) {
            return;
        }
        self.heap.push(v);
        self.pos[v.index()] = self.heap.len() - 1;
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with the highest activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top.index()] = ABSENT;
        let last = self.heap.pop().unwrap();
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order around `v` after its activity increased.
    pub fn bumped(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.pos.get(v.index()) {
            if p != ABSENT {
                self.sift_up(p, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i].index()] > act[self.heap[parent].index()] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l].index()] > act[self.heap[best].index()] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r].index()] > act[self.heap[best].index()] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a].index()] = a;
        self.pos[self.heap[b].index()] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let act = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut h = VarOrder::new();
        for i in 0..5 {
            h.insert(Var::from_index(i), &act);
        }
        let order: Vec<usize> = std::iter::from_fn(|| h.pop(&act))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn reinsert_and_membership() {
        let act = vec![1.0, 2.0];
        let mut h = VarOrder::new();
        let v0 = Var::from_index(0);
        h.insert(v0, &act);
        assert!(h.contains(v0));
        h.insert(v0, &act); // idempotent
        assert_eq!(h.pop(&act), Some(v0));
        assert!(!h.contains(v0));
        assert_eq!(h.pop(&act), None);
    }

    #[test]
    fn bump_reorders() {
        let mut act = vec![1.0, 2.0, 3.0];
        let mut h = VarOrder::new();
        for i in 0..3 {
            h.insert(Var::from_index(i), &act);
        }
        act[0] = 10.0;
        h.bumped(Var::from_index(0), &act);
        assert_eq!(h.pop(&act), Some(Var::from_index(0)));
    }
}
