//! # gm-trace — structured span/event flight recorder
//!
//! A low-overhead tracing layer for the closure pipeline. Call sites in
//! the hot crates (`gm_sim`, `gm_mc`, `goldmine`, `gm_serve`) open
//! [`span`]s around meaningful units of work — a simulation batch pass,
//! a SAT query, an engine iteration, a served job — and the recorder
//! collects them into a bounded per-sink ring that exports as Chrome
//! trace-event JSON (loadable in Perfetto or `chrome://tracing`).
//!
//! ## Design
//!
//! - **No-op when off.** When no sink is installed anywhere in the
//!   process, [`span`] costs one relaxed atomic load and a branch. The
//!   closure engine's byte-identity suites prove outcomes are identical
//!   with the recorder on and off; a bench kernel bounds the off-cost.
//! - **Sink resolution.** A span records into the calling thread's
//!   sink if one was installed with [`push_thread_sink`] (the serving
//!   daemon installs a per-job sink around each job it runs), else into
//!   the process-global sink from [`install_global`] (standalone traced
//!   runs), else nowhere. A thread sink *shadows* the global sink; it
//!   does not tee.
//! - **Thread-local staging.** Finished events are staged in a
//!   thread-local buffer and flushed to the sink's ring in chunks (at a
//!   size threshold, whenever the thread's span depth returns to zero,
//!   and when the thread sink is uninstalled), so the ring mutex is not
//!   taken per event on the hot path.
//! - **Bounded ring.** Each [`TraceSink`] keeps at most `capacity`
//!   events, dropping the *oldest* beyond that (flight-recorder
//!   semantics: the tail of a run is what you usually want) and
//!   counting the drops, which the export surfaces.
//! - **Monotonic timestamps.** All timestamps are nanoseconds since a
//!   lazily-initialized process epoch, so events recorded by different
//!   threads and different sinks in one process share a timeline.
//!
//! Span names are `&'static str` by construction — dynamic data goes in
//! args — which keeps recording allocation-light and makes the span-name
//! vocabulary a stable, documentable surface (see the README ops
//! runbook).

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity (events) for [`TraceSink::new`].
pub const DEFAULT_CAPACITY: usize = 1 << 15;

/// Staged events are flushed to the sink ring once this many pile up
/// (they are also flushed whenever the thread's span depth returns to
/// zero and when the thread sink is uninstalled).
const STAGE_FLUSH_LEN: usize = 64;

// ---------------------------------------------------------------------
// Process epoch and activity flag
// ---------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (first use wins; the
/// first caller observes ~0).
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Count of installed sinks (thread sinks + the global sink). The
/// disabled fast path is one relaxed load of this.
static ACTIVE_SINKS: AtomicUsize = AtomicUsize::new(0);

/// True if any sink is installed anywhere in the process. A cheap
/// pre-filter: a `true` here does not guarantee *this* thread resolves
/// to a sink (another thread's sink keeps it hot), but `false`
/// guarantees every span site is a no-op.
#[inline]
pub fn enabled() -> bool {
    ACTIVE_SINKS.load(Ordering::Relaxed) > 0
}

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// A span/event argument value (rendered into the Chrome trace `args`
/// object).
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string (allocates; prefer numeric args on hot paths).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// Event kind, mirroring the Chrome trace-event phases we emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span (`"ph": "X"`) with a duration.
    Complete {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A zero-duration instant (`"ph": "i"`, thread scope).
    Instant,
}

/// One recorded trace event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span/event name (static: the stable vocabulary).
    pub name: &'static str,
    /// Category (the emitting layer: `"engine"`, `"mc"`, `"sim"`,
    /// `"serve"`).
    pub cat: &'static str,
    /// Start timestamp, nanoseconds since the process epoch.
    pub ts_ns: u64,
    /// Small sequential id of the recording thread.
    pub tid: u32,
    /// Complete-with-duration or instant.
    pub kind: EventKind,
    /// Key/value annotations.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// Builds a complete (duration) event with explicit timestamps,
    /// for retroactive spans such as a job's queue wait. The thread id
    /// is taken from the calling thread.
    pub fn complete(cat: &'static str, name: &'static str, ts_ns: u64, dur_ns: u64) -> Self {
        TraceEvent {
            name,
            cat,
            ts_ns,
            tid: current_tid(),
            kind: EventKind::Complete { dur_ns },
            args: Vec::new(),
        }
    }

    /// Builds an instant event stamped now.
    pub fn instant(cat: &'static str, name: &'static str) -> Self {
        TraceEvent {
            name,
            cat,
            ts_ns: now_ns(),
            tid: current_tid(),
            kind: EventKind::Instant,
            args: Vec::new(),
        }
    }

    /// Appends an argument (builder style).
    #[must_use]
    pub fn with_arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }

    /// Duration in nanoseconds (0 for instants).
    pub fn dur_ns(&self) -> u64 {
        match self.kind {
            EventKind::Complete { dur_ns } => dur_ns,
            EventKind::Instant => 0,
        }
    }
}

// ---------------------------------------------------------------------
// Sink
// ---------------------------------------------------------------------

struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

struct SinkInner {
    capacity: usize,
    state: Mutex<Ring>,
}

/// A bounded ring of trace events. Cloning shares the ring; install a
/// clone per thread ([`push_thread_sink`]) or process-wide
/// ([`install_global`]) to start recording into it.
#[derive(Clone)]
pub struct TraceSink {
    inner: Arc<SinkInner>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("capacity", &self.inner.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// A sink with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A sink holding at most `capacity` events (oldest dropped, and
    /// counted, beyond that).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceSink {
            inner: Arc::new(SinkInner {
                capacity,
                state: Mutex::new(Ring {
                    events: VecDeque::new(),
                    dropped: 0,
                }),
            }),
        }
    }

    fn same_sink(&self, other: &TraceSink) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Records one event directly (takes the ring lock; span call
    /// sites go through the thread-local staging path instead).
    pub fn record(&self, event: TraceEvent) {
        let mut ring = self.inner.state.lock().unwrap();
        push_bounded(&mut ring, self.inner.capacity, event);
    }

    fn record_batch(&self, events: impl Iterator<Item = TraceEvent>) {
        let mut ring = self.inner.state.lock().unwrap();
        for event in events {
            push_bounded(&mut ring, self.inner.capacity, event);
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner.state.lock().unwrap().events.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.state.lock().unwrap().dropped
    }

    /// Snapshot of the held events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .state
            .lock()
            .unwrap()
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Discards all held events (the dropped counter is reset too).
    pub fn clear(&self) {
        let mut ring = self.inner.state.lock().unwrap();
        ring.events.clear();
        ring.dropped = 0;
    }

    /// Renders the held events as Chrome trace-event JSON — an object
    /// with a `traceEvents` array of `"X"`/`"i"` phase events
    /// (timestamps/durations in microseconds), loadable in Perfetto or
    /// `chrome://tracing`. If the ring overflowed, the drop count is
    /// reported under `otherData.droppedEvents`.
    pub fn export_chrome_json(&self) -> String {
        let ring = self.inner.state.lock().unwrap();
        let mut out = String::with_capacity(64 + ring.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,");
        out.push_str("\"args\":{\"name\":\"goldmine\"}}");
        for ev in &ring.events {
            out.push(',');
            out.push_str("{\"name\":");
            write_json_str(&mut out, ev.name);
            out.push_str(",\"cat\":");
            write_json_str(&mut out, ev.cat);
            match ev.kind {
                EventKind::Complete { dur_ns } => {
                    out.push_str(",\"ph\":\"X\",\"dur\":");
                    write_us(&mut out, dur_ns);
                }
                EventKind::Instant => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
            }
            out.push_str(",\"pid\":1,\"tid\":");
            let _ = write!(out, "{}", ev.tid);
            out.push_str(",\"ts\":");
            write_us(&mut out, ev.ts_ns);
            if !ev.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (key, value)) in ev.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_str(&mut out, key);
                    out.push(':');
                    match value {
                        ArgValue::U64(v) => {
                            let _ = write!(out, "{v}");
                        }
                        ArgValue::I64(v) => {
                            let _ = write!(out, "{v}");
                        }
                        ArgValue::F64(v) if v.is_finite() => {
                            let _ = write!(out, "{v}");
                        }
                        ArgValue::F64(_) => out.push_str("null"),
                        ArgValue::Bool(v) => {
                            let _ = write!(out, "{v}");
                        }
                        ArgValue::Str(v) => write_json_str(&mut out, v),
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push(']');
        if ring.dropped > 0 {
            let _ = write!(
                out,
                ",\"otherData\":{{\"droppedEvents\":\"{}\"}}",
                ring.dropped
            );
        }
        out.push('}');
        out
    }

    /// Aggregates complete spans by name: (name, count, total duration
    /// ns), sorted by total descending. A quick where-did-time-go view
    /// without leaving the terminal.
    pub fn summary(&self) -> Vec<(&'static str, u64, u64)> {
        let ring = self.inner.state.lock().unwrap();
        let mut agg: Vec<(&'static str, u64, u64)> = Vec::new();
        for ev in &ring.events {
            if let EventKind::Complete { dur_ns } = ev.kind {
                match agg.iter_mut().find(|(name, _, _)| *name == ev.name) {
                    Some((_, count, total)) => {
                        *count += 1;
                        *total += dur_ns;
                    }
                    None => agg.push((ev.name, 1, dur_ns)),
                }
            }
        }
        agg.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        agg
    }
}

fn push_bounded(ring: &mut Ring, capacity: usize, event: TraceEvent) {
    if ring.events.len() >= capacity {
        ring.events.pop_front();
        ring.dropped += 1;
    }
    ring.events.push_back(event);
}

/// Writes `ns` as microseconds with nanosecond precision (`123.456`),
/// exactly, without a float round trip.
fn write_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Thread state: current sink, staging buffer, span depth, tid
// ---------------------------------------------------------------------

struct ThreadState {
    sink: Option<TraceSink>,
    staged_for: Option<TraceSink>,
    staged: Vec<TraceEvent>,
    depth: u32,
    tid: u32,
}

impl ThreadState {
    fn flush(&mut self) {
        if let Some(sink) = &self.staged_for {
            if !self.staged.is_empty() {
                sink.record_batch(self.staged.drain(..));
            }
        }
        self.staged.clear();
    }

    fn stage(&mut self, sink: &TraceSink, event: TraceEvent) {
        let same = self
            .staged_for
            .as_ref()
            .is_some_and(|staged| staged.same_sink(sink));
        if !same {
            self.flush();
            self.staged_for = Some(sink.clone());
        }
        self.staged.push(event);
        if self.depth == 0 || self.staged.len() >= STAGE_FLUSH_LEN {
            self.flush();
        }
    }
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        self.flush();
    }
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static THREAD: RefCell<ThreadState> = RefCell::new(ThreadState {
        sink: None,
        staged_for: None,
        staged: Vec::new(),
        depth: 0,
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
    });
}

/// Small sequential id of the calling thread (stable for its
/// lifetime; used as the Chrome trace `tid`).
pub fn current_tid() -> u32 {
    THREAD.with(|t| t.borrow().tid)
}

static GLOBAL: OnceLock<TraceSink> = OnceLock::new();

/// Installs `sink` as the process-global recorder — the fallback for
/// threads without a thread sink. Can succeed once per process;
/// returns `false` (and records nothing new) if a global sink was
/// already installed. Intended for traced standalone runs and tools;
/// tests and the serving daemon should prefer the scoped
/// [`push_thread_sink`].
pub fn install_global(sink: TraceSink) -> bool {
    let installed = GLOBAL.set(sink).is_ok();
    if installed {
        ACTIVE_SINKS.fetch_add(1, Ordering::Relaxed);
    }
    installed
}

/// The process-global sink, if one was installed.
pub fn global() -> Option<TraceSink> {
    GLOBAL.get().cloned()
}

/// Installs `sink` as the calling thread's recorder until the returned
/// guard drops (restoring the previous thread sink, if any). Spans
/// opened by this thread while the guard lives record into `sink`,
/// shadowing the global sink.
#[must_use = "the thread sink is uninstalled when the guard drops"]
pub fn push_thread_sink(sink: TraceSink) -> ThreadSinkGuard {
    let prev = THREAD.with(|t| t.borrow_mut().sink.replace(sink));
    ACTIVE_SINKS.fetch_add(1, Ordering::Relaxed);
    ThreadSinkGuard { prev }
}

/// Guard from [`push_thread_sink`]; restores the previous thread sink
/// and flushes staged events on drop.
pub struct ThreadSinkGuard {
    prev: Option<TraceSink>,
}

impl Drop for ThreadSinkGuard {
    fn drop(&mut self) {
        THREAD.with(|t| {
            let mut t = t.borrow_mut();
            t.flush();
            t.sink = self.prev.take();
        });
        ACTIVE_SINKS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Flushes the calling thread's staged events to their sink.
pub fn flush_thread() {
    THREAD.with(|t| t.borrow_mut().flush());
}

fn current_sink() -> Option<TraceSink> {
    THREAD
        .with(|t| t.borrow().sink.clone())
        .or_else(|| GLOBAL.get().cloned())
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

struct ActiveSpan {
    sink: TraceSink,
    cat: &'static str,
    name: &'static str,
    start_ns: u64,
    kind_instant: bool,
    args: Vec<(&'static str, ArgValue)>,
}

/// RAII span handle from [`span`]/[`instant`]. Records a trace event
/// when dropped; inert (a `None`) when the recorder is off.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// True when this span will record (use to skip building costly
    /// args, e.g. strings, on the disabled path).
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches an annotation. Values may be added any time before the
    /// guard drops — stats deltas are typically known only after the
    /// work completes. No-op when inactive, but `value` is converted
    /// eagerly: guard string-building call sites with [`Self::is_active`].
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(active) = &mut self.active {
            active.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let (ts_ns, kind) = if active.kind_instant {
            (active.start_ns, EventKind::Instant)
        } else {
            let end = now_ns();
            (
                active.start_ns,
                EventKind::Complete {
                    dur_ns: end.saturating_sub(active.start_ns),
                },
            )
        };
        THREAD.with(|t| {
            let mut t = t.borrow_mut();
            if !active.kind_instant {
                t.depth = t.depth.saturating_sub(1);
            }
            let event = TraceEvent {
                name: active.name,
                cat: active.cat,
                ts_ns,
                tid: t.tid,
                kind,
                args: active.args,
            };
            t.stage(&active.sink, event);
        });
    }
}

/// Opens a span; the event is recorded (with its duration) when the
/// returned guard drops. One relaxed atomic load + branch when the
/// recorder is off.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    span_slow(cat, name, false)
}

/// Records an instant event, stamped at this call. Args can be added
/// on the returned guard before it drops.
#[inline]
pub fn instant(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None };
    }
    span_slow(cat, name, true)
}

#[cold]
fn span_slow(cat: &'static str, name: &'static str, kind_instant: bool) -> SpanGuard {
    let Some(sink) = current_sink() else {
        return SpanGuard { active: None };
    };
    if !kind_instant {
        THREAD.with(|t| t.borrow_mut().depth += 1);
    }
    SpanGuard {
        active: Some(ActiveSpan {
            sink,
            cat,
            name,
            start_ns: now_ns(),
            kind_instant,
            args: Vec::new(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_inert_without_a_sink() {
        // (Other tests in the process may have sinks installed on
        // their own threads; this thread resolves to none as long as
        // no global sink is installed by this test binary.)
        let mut guard = span("test", "noop");
        guard.arg("k", 1u64);
        assert!(!guard.is_active());
        drop(guard);
    }

    #[test]
    fn thread_sink_records_nested_spans_with_args() {
        let sink = TraceSink::new();
        {
            let _install = push_thread_sink(sink.clone());
            let mut outer = span("test", "outer");
            outer.arg("design", "b12");
            {
                let mut inner = span("test", "inner");
                inner.arg("queries", 3u64);
                assert!(inner.is_active());
            }
            instant("test", "tick");
        }
        let events = sink.events();
        assert_eq!(events.len(), 3, "inner, tick, outer");
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "tick");
        assert_eq!(events[1].kind, EventKind::Instant);
        assert_eq!(events[2].name, "outer");
        // Containment: outer starts before inner and ends after.
        let outer = &events[2];
        let inner = &events[0];
        assert!(outer.ts_ns <= inner.ts_ns);
        assert!(outer.ts_ns + outer.dur_ns() >= inner.ts_ns + inner.dur_ns());
        assert_eq!(
            outer.args,
            vec![("design", ArgValue::Str("b12".to_string()))]
        );
        assert_eq!(inner.args, vec![("queries", ArgValue::U64(3))]);
        assert_eq!(outer.tid, inner.tid);
    }

    #[test]
    fn guard_restores_previous_thread_sink() {
        let first = TraceSink::new();
        let second = TraceSink::new();
        let _a = push_thread_sink(first.clone());
        {
            let _b = push_thread_sink(second.clone());
            drop(span("test", "into_second"));
        }
        drop(span("test", "into_first"));
        flush_thread();
        assert_eq!(second.events().len(), 1);
        assert_eq!(second.events()[0].name, "into_second");
        assert_eq!(first.events().len(), 1);
        assert_eq!(first.events()[0].name, "into_first");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let sink = TraceSink::with_capacity(4);
        {
            let _install = push_thread_sink(sink.clone());
            for _ in 0..7 {
                drop(span("test", "s"));
            }
        }
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 3);
        assert!(sink.export_chrome_json().contains("droppedEvents"));
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn staging_flushes_at_threshold_even_inside_a_span() {
        let sink = TraceSink::new();
        let _install = push_thread_sink(sink.clone());
        let _outer = span("test", "outer");
        for _ in 0..STAGE_FLUSH_LEN {
            drop(span("test", "child"));
        }
        // Depth never returned to zero, but the threshold flushed.
        assert!(sink.len() >= STAGE_FLUSH_LEN);
    }

    #[test]
    fn export_is_wellformed_chrome_json() {
        let sink = TraceSink::new();
        {
            let _install = push_thread_sink(sink.clone());
            let mut g = span("mc", "mc.sat_query");
            g.arg("conflicts", 12u64);
            g.arg("label", "quote\" slash\\ tab\t");
            g.arg("ratio", 0.5f64);
            g.arg("sat", true);
            drop(g);
            instant("serve", "serve.cache_hit");
        }
        let json = sink.export_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"mc.sat_query\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"conflicts\":12"));
        assert!(json.contains("\"label\":\"quote\\\" slash\\\\ tab\\t\""));
        assert!(json.contains("\"ratio\":0.5"));
        assert!(json.contains("\"sat\":true"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        // Timestamps are rendered in microseconds with ns precision.
        assert!(json.contains("\"ts\":"));
        assert!(json.contains("\"dur\":"));
    }

    #[test]
    fn retroactive_complete_events_record_directly() {
        let sink = TraceSink::new();
        let start = now_ns();
        sink.record(
            TraceEvent::complete("serve", "serve.queue", start, 1_500).with_arg("job", 7u64),
        );
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].dur_ns(), 1_500);
        assert_eq!(events[0].args, vec![("job", ArgValue::U64(7))]);
    }

    #[test]
    fn summary_aggregates_by_name_sorted_by_total() {
        let sink = TraceSink::new();
        sink.record(TraceEvent::complete("a", "short", 0, 10));
        sink.record(TraceEvent::complete("a", "long", 0, 100));
        sink.record(TraceEvent::complete("a", "short", 0, 20));
        sink.record(TraceEvent::instant("a", "blip"));
        let summary = sink.summary();
        assert_eq!(summary, vec![("long", 1, 100), ("short", 2, 30)]);
    }

    #[test]
    fn sink_is_shared_across_threads() {
        let sink = TraceSink::new();
        let clone = sink.clone();
        std::thread::spawn(move || {
            let _install = push_thread_sink(clone);
            drop(span("test", "worker"));
        })
        .join()
        .unwrap();
        {
            let _install = push_thread_sink(sink.clone());
            drop(span("test", "main"));
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        let tids: Vec<u32> = events.iter().map(|e| e.tid).collect();
        assert_ne!(tids[0], tids[1], "distinct threads get distinct tids");
    }

    #[test]
    fn microsecond_rendering_is_exact() {
        let mut s = String::new();
        write_us(&mut s, 1_234_567);
        assert_eq!(s, "1234.567");
        s.clear();
        write_us(&mut s, 42);
        assert_eq!(s, "0.042");
    }
}
