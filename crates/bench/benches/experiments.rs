//! Experiment regenerators under `cargo bench`: runs each of E1–E8 in a
//! bench-sized configuration and prints its table once, so a single
//! `cargo bench --workspace` regenerates every figure/table alongside
//! the kernel measurements. Full-scale runs live in the `expt_*`
//! binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Once;

static PRINT_ONCE: Once = Once::new();

fn print_all_tables() {
    PRINT_ONCE.call_once(|| {
        println!("\n================ paper tables/figures (bench-sized) ================\n");
        let rows = gm_bench::fig12();
        gm_bench::print_fig12(&rows);
        println!();
        let series = gm_bench::fig13(24);
        gm_bench::print_fig13(&series);
        println!();
        let series = gm_bench::fig14(24);
        gm_bench::print_fig14(&series);
        println!();
        let rows = gm_bench::table1();
        gm_bench::print_table1(&rows);
        println!();
        let r = gm_bench::fig15("b12_lite", 200);
        gm_bench::print_fig15(&r);
        println!();
        let (total, rows) = gm_bench::table2();
        gm_bench::print_table2(total, &rows);
        println!();
        let rows = gm_bench::fig16(&[("b01", 85), ("b02", 50), ("b09", 500)]);
        gm_bench::print_fig16(&rows);
        println!();
        let rows = gm_bench::table3(500);
        gm_bench::print_table3(&rows);
        println!("\n====================================================================\n");
    });
}

fn bench_experiments(c: &mut Criterion) {
    print_all_tables();
    // Measure the two headline experiments end to end.
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("e1_fig12_arbiter_closure", |b| {
        b.iter(gm_bench::fig12);
    });
    g.bench_function("e4_table1_zero_seed", |b| {
        b.iter(gm_bench::table1);
    });
    g.finish();
}

criterion_group!(experiments, bench_experiments);
criterion_main!(experiments);
