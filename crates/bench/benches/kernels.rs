//! Criterion kernels: the per-component costs behind the refinement loop
//! (the paper's §7 runtime discussion — formal checks at ~1.5 s each on
//! 2010 hardware dominate; these benches show where our time goes).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gm_mc::{
    blast, bmc, k_induction, BitAtom, Checker, ExplicitLimits, ReachableStates, WindowProperty,
};
use gm_mine::{Dataset, DecisionTree, MiningSpec};
use gm_rtl::{cone_of, elaborate, parse_verilog};
use gm_sat::{Solver, Var};
use gm_sim::{
    collect_vectors, CompileOptions, CompiledModule, NopBatchObserver, NopObserver, RandomStimulus,
    Simulator, TestSuite,
};
use goldmine::{Engine, EngineConfig, TargetSelection};

fn bench_simulation(c: &mut Criterion) {
    let module = gm_designs::b12_lite();
    let vectors = collect_vectors(&mut RandomStimulus::new(&module, 3, 1000));
    c.bench_function("sim/b12_lite_1000_cycles", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&module).unwrap();
            sim.run_vectors(&vectors, &mut NopObserver)
        });
    });

    let mut suite = TestSuite::new();
    suite.push("r", vectors);
    c.bench_function("sim/b12_lite_1000_cycles_with_coverage", |b| {
        b.iter(|| {
            let mut cov = gm_coverage::CoverageSuite::new(&module);
            suite.run(&module, &mut cov).unwrap();
            cov.report()
        });
    });
}

/// The compiled-backend kernels behind `BENCH_sim.json`: the same
/// stimulus suite (ragged random segments, enough to fill the widest
/// 512-lane block) through the interpreter, the compiled scalar tape,
/// and the bit-parallel tape at every lane-block width — with coverage
/// attached, which is how the closure loop simulates.
fn bench_sim_backends(c: &mut Criterion) {
    let module = gm_designs::b12_lite();
    let compiled = CompiledModule::compile(&module).unwrap();
    let mut suite = TestSuite::new();
    for seed in 0..512u64 {
        suite.push(
            format!("s{seed}"),
            collect_vectors(&mut RandomStimulus::new(&module, seed, 64)),
        );
    }
    c.bench_function("sim/backend_interpreter_512x64_coverage", |b| {
        b.iter(|| {
            let mut cov = gm_coverage::CoverageSuite::new(&module);
            suite.run(&module, &mut cov).unwrap();
            cov.report()
        });
    });
    c.bench_function("sim/backend_compiled_scalar_512x64_coverage", |b| {
        b.iter(|| {
            let mut cov = gm_coverage::CoverageSuite::new(&module);
            for seg in suite.segments() {
                compiled.run_segment(&module, &seg.vectors, &mut cov);
            }
            cov.report()
        });
    });
    for block in [1usize, 2, 4, 8] {
        c.bench_function(
            &format!("sim/backend_compiled_batch_w{block}_coverage"),
            |b| {
                b.iter(|| {
                    let mut cov = gm_coverage::CoverageSuite::new(&module);
                    suite.observe_compiled(&module, &compiled, &mut cov, block);
                    cov.report()
                });
            },
        );
    }
    // Trace extraction included (the mining data-generation shape).
    c.bench_function("sim/backend_compiled_batch_512x64_traces", |b| {
        b.iter(|| suite.run_compiled(&module, &compiled, &mut NopBatchObserver, 1));
    });
}

/// Coverage-attached vs bare throughput per lane-block width — the
/// direct measure of the fused-probe and probe-free-tape wins. The
/// "cov" kernels run the probed tape under a full `CoverageSuite`; the
/// "bare" kernels run the probe-free tape under a nop observer (the
/// cex-replay / seed-trace shape, paying nothing for observation).
fn bench_observer_overhead(c: &mut Criterion) {
    let module = gm_designs::b12_lite();
    let probed = CompiledModule::compile(&module).unwrap();
    let bare = CompiledModule::compile_with(&module, CompileOptions { probes: false }).unwrap();
    let mut suite = TestSuite::new();
    for seed in 0..512u64 {
        suite.push(
            format!("s{seed}"),
            collect_vectors(&mut RandomStimulus::new(&module, seed, 64)),
        );
    }
    for block in [1usize, 2, 4, 8] {
        c.bench_function(
            &format!("sim/backend_observer_overhead_w{block}_cov"),
            |b| {
                b.iter(|| {
                    let mut cov = gm_coverage::CoverageSuite::new(&module);
                    suite.observe_compiled(&module, &probed, &mut cov, block);
                    cov.report()
                });
            },
        );
        c.bench_function(
            &format!("sim/backend_observer_overhead_w{block}_bare"),
            |b| {
                b.iter(|| suite.observe_compiled(&module, &bare, &mut NopBatchObserver, block));
            },
        );
    }
}

fn bench_parse_blast(c: &mut Criterion) {
    c.bench_function("rtl/parse_b17_lite", |b| {
        b.iter(|| parse_verilog(gm_designs::sources::B17_LITE).unwrap());
    });
    let module = gm_designs::b17_lite();
    let elab = elaborate(&module).unwrap();
    c.bench_function("mc/blast_b17_lite", |b| {
        b.iter(|| blast(&module, &elab).unwrap());
    });
}

fn bench_sat(c: &mut Criterion) {
    // PHP(7,6): a hard UNSAT instance exercising clause learning.
    c.bench_function("sat/pigeonhole_7_6", |b| {
        b.iter_batched(
            || {
                let mut s = Solver::new();
                let n = 6;
                let p: Vec<Vec<Var>> = (0..=n)
                    .map(|_| (0..n).map(|_| s.new_var()).collect())
                    .collect();
                for row in &p {
                    let c: Vec<_> = row.iter().map(|v| v.positive()).collect();
                    s.add_clause(&c);
                }
                #[allow(clippy::needless_range_loop)] // j spans two rows at once
                for j in 0..n {
                    for i1 in 0..=n {
                        for i2 in (i1 + 1)..=n {
                            s.add_clause(&[p[i1][j].negative(), p[i2][j].negative()]);
                        }
                    }
                }
                s
            },
            |mut s| s.solve(),
            BatchSize::SmallInput,
        );
    });
}

fn bench_model_checking(c: &mut Criterion) {
    let module = gm_designs::arbiter2();
    let elab = elaborate(&module).unwrap();
    let blasted = blast(&module, &elab).unwrap();
    let req0 = module.require("req0").unwrap();
    let gnt0 = module.require("gnt0").unwrap();
    // The paper's A2 (true) and A0 (false).
    let a2 = WindowProperty {
        antecedent: vec![
            BitAtom::new(req0, 0, 0, false),
            BitAtom::new(req0, 0, 1, false),
        ],
        consequent: BitAtom::new(gnt0, 0, 2, false),
    };
    let a0 = WindowProperty {
        antecedent: vec![BitAtom::new(req0, 0, 0, false)],
        consequent: BitAtom::new(gnt0, 0, 1, true),
    };
    c.bench_function("mc/explicit_reach_arbiter2", |b| {
        b.iter(|| ReachableStates::explore(&blasted, &ExplicitLimits::default()).unwrap());
    });
    c.bench_function("mc/k_induction_prove_a2", |b| {
        b.iter(|| k_induction(&module, &blasted, &a2, 8));
    });
    c.bench_function("mc/bmc_refute_a0", |b| {
        b.iter(|| bmc(&module, &blasted, &a0, 8));
    });
    c.bench_function("mc/checker_amortized_both", |b| {
        b.iter_batched(
            || Checker::new(&module).unwrap(),
            |mut ch| {
                let r1 = ch.check(&a2).unwrap();
                let r2 = ch.check(&a0).unwrap();
                (r1, r2)
            },
            BatchSize::SmallInput,
        );
    });
}

/// Tentpole comparison: per-query unrollings (the pre-session dispatch,
/// one fresh `Unroller` per property) vs one persistent batched session
/// on the largest catalog design, plus the memoized re-batch that the
/// refinement loop sees on repeated candidates.
fn bench_batched_checking(c: &mut Criterion) {
    let module = gm_designs::b18_lite();
    let elab = elaborate(&module).unwrap();
    let blasted = blast(&module, &elab).unwrap();
    let go = module.require("go").unwrap();
    let done = module.require("done").unwrap();
    let fault = module.require("fault").unwrap();
    let bus = module.require("bus").unwrap();
    let props: Vec<WindowProperty> = (0..4)
        .map(|i| WindowProperty {
            antecedent: vec![
                BitAtom::new(go, 0, 0, i % 2 == 0),
                BitAtom::new(done, 0, 0, false),
            ],
            consequent: BitAtom::new(if i < 2 { fault } else { bus }, u32::from(i == 3), 1, false),
        })
        .collect();
    let backend = gm_mc::Backend::KInduction { max_k: 2 };
    c.bench_function("mc/b18_lite_per_query_unrollings", |b| {
        b.iter(|| {
            props
                .iter()
                .map(|p| k_induction(&module, &blasted, p, 2))
                .collect::<Vec<_>>()
        });
    });
    c.bench_function("mc/b18_lite_batched_session", |b| {
        b.iter_batched(
            || Checker::new(&module).unwrap().with_backend(backend),
            |mut ch| ch.check_batch(&props).unwrap(),
            BatchSize::SmallInput,
        );
    });
    c.bench_function("mc/b18_lite_rebatch_memoized", |b| {
        let mut ch = Checker::new(&module).unwrap().with_backend(backend);
        ch.check_batch(&props).unwrap();
        b.iter(|| ch.check_batch(&props).unwrap());
    });
}

/// Shard-scaling kernel: the same deduped worklist on the largest
/// catalog design, dispatched through 1 / 2 / 4 / 8 shard sessions.
/// On a single-core host the sharded numbers mostly price the scoped
/// thread pool; on multi-core CI they show the scaling headroom of
/// `Engine::iteration_pass`'s dispatch.
fn bench_shard_scaling(c: &mut Criterion) {
    let module = gm_designs::b18_lite();
    let go = module.require("go").unwrap();
    let done = module.require("done").unwrap();
    let fault = module.require("fault").unwrap();
    let bus = module.require("bus").unwrap();
    let props: Vec<WindowProperty> = (0..16u32)
        .map(|i| WindowProperty {
            antecedent: vec![
                BitAtom::new(go, 0, 0, i % 2 == 0),
                BitAtom::new(done, 0, 0, i % 3 == 0),
            ],
            consequent: if i % 4 < 2 {
                BitAtom::new(fault, 0, 1, i % 5 == 0)
            } else {
                BitAtom::new(bus, i % 2, 1, i % 5 == 0)
            },
        })
        .collect();
    let backend = gm_mc::Backend::KInduction { max_k: 2 };
    for shards in [1usize, 2, 4, 8] {
        c.bench_function(&format!("mc/b18_lite_sharded_batch_{shards}"), |b| {
            b.iter_batched(
                || Checker::new(&module).unwrap().with_backend(backend),
                |mut ch| ch.check_batch_sharded(&props, shards).unwrap(),
                BatchSize::SmallInput,
            );
        });
    }
}

/// Campaign kernel: the whole small-design catalog closed concurrently
/// vs one design at a time.
fn bench_campaign(c: &mut Criterion) {
    let names = ["cex_small", "arbiter2", "b01", "b02", "b09"];
    let jobs: Vec<_> = names
        .iter()
        .map(|n| {
            let d = gm_designs::by_name(n).unwrap();
            let module = d.module();
            let config = EngineConfig {
                window: d.window,
                record_coverage: false,
                ..EngineConfig::default()
            };
            (n.to_string(), module, config)
        })
        .collect();
    for workers in [1usize, 4] {
        c.bench_function(
            &format!("engine/campaign_5_designs_{workers}_workers"),
            |b| {
                b.iter(|| {
                    let mut campaign = goldmine::Campaign::new().with_workers(workers);
                    for (n, m, cfg) in &jobs {
                        campaign.push(n.clone(), m.clone(), cfg.clone());
                    }
                    let summary = campaign.run();
                    assert!(summary.all_ok());
                    summary.converged_count()
                });
            },
        );
    }
}

/// Tentpole comparison: the closure-service scheduler on a *skewed*
/// multi-design workload. The static round-robin deal lands every
/// expensive design on worker 0 (the adversarial case the ROADMAP's
/// "skewed worklists leave shards idle" item describes); work-stealing
/// lets the idle peers take them. Same jobs, same results — the gap is
/// pure idle time. Two variants:
///
/// * `skewed_12_jobs` — real closure jobs (CPU-bound): the gap shows on
///   multi-core hosts; a single-core host timeslices the heavies either
///   way, so there the numbers mostly price the pool (the same caveat
///   as the shard-scaling kernels above).
/// * `skewed_latency_jobs` — latency-bound jobs (each "heavy" job waits
///   on a simulated external checker): round-robin leaves the peers
///   idle while worker 0 waits out every heavy job in sequence, so
///   work-stealing wins even on one core.
fn bench_serve_scheduler(c: &mut Criterion) {
    use gm_serve::SchedPolicy;
    let heavy = gm_designs::by_name("arbiter4").unwrap();
    let light = gm_designs::by_name("cex_small").unwrap();
    let workers = 4usize;
    // 12 jobs; indices 0, 4, 8 (worker 0's static share) are the heavy
    // ones.
    let jobs: Vec<goldmine::CampaignJob> = (0..12)
        .map(|i| {
            let d = if usize::is_multiple_of(i, workers) {
                &heavy
            } else {
                &light
            };
            let module = d.module();
            let config = EngineConfig {
                window: d.window,
                stimulus: goldmine::SeedStimulus::Random { cycles: 32 },
                record_coverage: false,
                ..EngineConfig::default()
            };
            goldmine::CampaignJob {
                name: format!("{}-{i}", d.name),
                module,
                config,
            }
        })
        .collect();
    for policy in [SchedPolicy::RoundRobin, SchedPolicy::WorkStealing] {
        c.bench_function(&format!("serve/skewed_12_jobs_4_workers_{policy:?}"), |b| {
            b.iter(|| {
                let summary = gm_serve::run_campaign(jobs.clone(), workers, policy);
                assert!(summary.all_ok());
                summary.converged_count()
            });
        });
    }
    // Latency-bound variant: every 4th job waits 20 ms on a simulated
    // external checker, and the static deal puts all of them on worker
    // 0 (60 ms of serialized waiting); stealing overlaps the waits.
    for policy in [SchedPolicy::RoundRobin, SchedPolicy::WorkStealing] {
        c.bench_function(&format!("serve/skewed_latency_jobs_{policy:?}"), |b| {
            b.iter(|| {
                let results = gm_serve::run_jobs((0..12u64).collect(), workers, policy, |i| {
                    if (i as usize).is_multiple_of(workers) {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    i
                });
                results.len()
            });
        });
    }
}

/// Server throughput: repeated submissions of a small design mix
/// through the persistent service — the steady-state request path
/// (content-addressed cache hits, parked warm checkers, work-stealing
/// dispatch) rather than a fresh engine per design.
fn bench_serve_throughput(c: &mut Criterion) {
    use gm_serve::{ClosureService, ServeConfig};
    let designs: Vec<_> = ["cex_small", "b01", "b02"]
        .iter()
        .map(|n| gm_designs::by_name(n).unwrap())
        .collect();
    let config_for = |d: &gm_designs::DesignInfo| EngineConfig {
        window: d.window,
        stimulus: goldmine::SeedStimulus::Random { cycles: 32 },
        record_coverage: false,
        ..EngineConfig::default()
    };
    let service = ClosureService::new(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });
    // Warm the cache once so the kernel measures the steady state.
    for d in &designs {
        let (id, _) = service
            .submit_module(d.name, d.module(), config_for(d))
            .unwrap();
        service.wait(id);
    }
    c.bench_function("serve/throughput_9_warm_jobs_4_workers", |b| {
        b.iter(|| {
            let ids: Vec<u64> = (0..9)
                .map(|i| {
                    let d = &designs[i % designs.len()];
                    service
                        .submit_module(d.name, d.module(), config_for(d))
                        .unwrap()
                        .0
                })
                .collect();
            for id in ids {
                service.wait(id);
            }
        });
    });
    let stats = service.stats();
    assert!(stats.cache_hits > stats.cache_misses);
    service.shutdown();
}

fn bench_mining(c: &mut Criterion) {
    let module = gm_designs::arbiter4();
    let elab = elaborate(&module).unwrap();
    let gnt0 = module.require("gnt0").unwrap();
    let cone = cone_of(&module, &elab, gnt0);
    let spec = MiningSpec::for_output(&module, &elab, &cone, 0, 1);
    let mut suite = TestSuite::new();
    suite.push(
        "r",
        collect_vectors(&mut RandomStimulus::new(&module, 5, 2000)),
    );
    let traces = suite.run(&module, &mut NopObserver).unwrap();
    c.bench_function("mine/tree_fit_arbiter4_2000_rows", |b| {
        b.iter(|| {
            let mut ds = Dataset::new();
            ds.add_traces(&spec, &traces);
            let mut tree = DecisionTree::new(&spec);
            tree.fit(&ds).unwrap();
            tree.node_count()
        });
    });
}

fn bench_full_loop(c: &mut Criterion) {
    let module = gm_designs::arbiter2();
    let gnt0 = module.require("gnt0").unwrap();
    c.bench_function("engine/arbiter2_full_closure", |b| {
        b.iter(|| {
            let config = EngineConfig {
                targets: TargetSelection::Bits(vec![(gnt0, 0)]),
                record_coverage: false,
                ..EngineConfig::default()
            };
            Engine::new(&module, config).unwrap().run().unwrap()
        });
    });
}

/// Ablation: incremental tree updates vs rebuilding from scratch on
/// every counterexample (the design choice §3 motivates).
fn bench_ablation_incremental(c: &mut Criterion) {
    let module = gm_designs::arbiter4();
    let elab = elaborate(&module).unwrap();
    let gnt0 = module.require("gnt0").unwrap();
    let cone = cone_of(&module, &elab, gnt0);
    let spec = MiningSpec::for_output(&module, &elab, &cone, 0, 1);
    let mut suite = TestSuite::new();
    suite.push(
        "seed",
        collect_vectors(&mut RandomStimulus::new(&module, 5, 500)),
    );
    for i in 0..20 {
        suite.push(
            format!("extra-{i}"),
            collect_vectors(&mut RandomStimulus::new(&module, 100 + i, 5)),
        );
    }
    let traces = suite.run(&module, &mut NopObserver).unwrap();

    c.bench_function("ablation/incremental_tree_updates", |b| {
        b.iter(|| {
            let mut ds = Dataset::new();
            ds.add_trace(&spec, &traces[0]);
            let mut tree = DecisionTree::new(&spec);
            tree.fit(&ds).unwrap();
            for t in &traces[1..] {
                let rows = ds.add_trace(&spec, t);
                tree.add_rows(&ds, &rows.rows).unwrap();
            }
            tree.node_count()
        });
    });
    c.bench_function("ablation/rebuild_tree_each_time", |b| {
        b.iter(|| {
            let mut ds = Dataset::new();
            ds.add_trace(&spec, &traces[0]);
            let mut tree = DecisionTree::new(&spec);
            tree.fit(&ds).unwrap();
            let mut last = tree.node_count();
            for t in &traces[1..] {
                ds.add_trace(&spec, t);
                let mut tree = DecisionTree::new(&spec);
                tree.fit(&ds).unwrap();
                last = tree.node_count();
            }
            last
        });
    });
}

/// Ablation: explicit-state vs SAT backends on the same mining load.
fn bench_ablation_backends(c: &mut Criterion) {
    let module = gm_designs::arbiter2();
    let outp = module.require("gnt0").unwrap();
    for (label, backend) in [
        ("explicit", gm_mc::Backend::Auto),
        ("k_induction", gm_mc::Backend::KInduction { max_k: 8 }),
    ] {
        c.bench_function(&format!("ablation/backend_{label}_arbiter2"), |b| {
            b.iter(|| {
                let config = EngineConfig {
                    targets: TargetSelection::Bits(vec![(outp, 0)]),
                    backend,
                    record_coverage: false,
                    max_iterations: 16,
                    ..EngineConfig::default()
                };
                Engine::new(&module, config).unwrap().run().unwrap()
            });
        });
    }
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(10);
    targets = bench_simulation,
        bench_sim_backends,
        bench_observer_overhead,
        bench_parse_blast,
        bench_sat,
        bench_model_checking,
        bench_batched_checking,
        bench_shard_scaling,
        bench_campaign,
        bench_serve_scheduler,
        bench_serve_throughput,
        bench_mining,
        bench_full_loop,
        bench_ablation_incremental,
        bench_ablation_backends
);
criterion_main!(kernels);
