//! Closed-loop load generator for the `gmserved` closure service.
//!
//! Drives a live socket with a stepped arrival-rate ramp
//! ([`RampConfig`]): each step schedules `rate * step_seconds`
//! submissions at uniform arrival times and measures completion
//! latency against the *scheduled* arrival, so queueing delay under
//! saturation counts against the SLO instead of hiding behind a
//! slowed-down sender. Concurrency is bounded by `connections`
//! clients, each with its own socket.
//!
//! Two canned request mixes probe the design cache from both ends:
//! [`cache_friendly_mix`] cycles a fixed set of small designs (every
//! submission after the first round is a cache hit), while
//! [`cache_hostile_mix`] makes every submission a structurally
//! distinct design (every submission is a miss and an eventual
//! eviction under a byte budget). The `bench_serve` binary runs both
//! and writes the per-step p50/p95/p99 and the saturation throughput
//! to `BENCH_serve.json`.

use gm_serve::{ServeClient, WireConfig};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A stepped arrival-rate ramp: `initial_rps`, then `+increment_rps`
/// per step, capped at `target_rps`, holding each rate for
/// `step_seconds`.
#[derive(Clone, Copy, Debug)]
pub struct RampConfig {
    /// First step's offered request rate (requests/second).
    pub initial_rps: u32,
    /// Offered-rate increase between steps.
    pub increment_rps: u32,
    /// Final offered rate (inclusive cap).
    pub target_rps: u32,
    /// Wall-clock seconds each step offers load for.
    pub step_seconds: u64,
    /// Concurrent client connections (the closed-loop bound).
    pub connections: usize,
}

impl Default for RampConfig {
    fn default() -> Self {
        RampConfig {
            initial_rps: 8,
            increment_rps: 8,
            target_rps: 32,
            step_seconds: 5,
            connections: 4,
        }
    }
}

impl RampConfig {
    /// Offered rates in step order.
    pub fn rates(&self) -> Vec<u32> {
        let mut rates = Vec::new();
        let mut rate = self.initial_rps.max(1);
        loop {
            rates.push(rate);
            if rate >= self.target_rps {
                return rates;
            }
            rate = (rate + self.increment_rps.max(1)).min(self.target_rps);
        }
    }

    /// Total submissions the whole ramp offers — the pool size a
    /// cache-hostile mix needs so no design ever repeats.
    pub fn total_requests(&self) -> u64 {
        self.rates()
            .iter()
            .map(|r| u64::from(*r) * self.step_seconds)
            .sum()
    }
}

/// One canned submission.
#[derive(Clone, Debug)]
pub struct LoadRequest {
    /// Job label.
    pub name: String,
    /// Verilog source.
    pub source: String,
    /// Run configuration.
    pub config: WireConfig,
}

/// A request mix: workers cycle through `requests` in arrival order.
#[derive(Clone, Debug)]
pub struct Mix {
    /// Mix label, reported in `BENCH_serve.json`.
    pub name: &'static str,
    /// The request pool; request `k` uses entry `k % len`.
    pub requests: Vec<LoadRequest>,
}

/// Latency and throughput for one ramp step.
#[derive(Clone, Copy, Debug)]
pub struct StepReport {
    /// The step's offered rate.
    pub offered_rps: u32,
    /// Completions per wall-clock second actually sustained.
    pub achieved_rps: f64,
    /// Submissions scheduled.
    pub sent: u64,
    /// Submissions that completed successfully.
    pub completed: u64,
    /// Submissions that errored (transport or engine).
    pub errors: u64,
    /// Median scheduled-to-completion latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
}

/// A whole ramp against one mix.
#[derive(Clone, Debug)]
pub struct MixReport {
    /// The mix label.
    pub mix: &'static str,
    /// Highest achieved completion rate across the steps — the
    /// saturation throughput once the offered rate outruns it.
    pub saturation_rps: f64,
    /// Per-step latency/throughput records.
    pub steps: Vec<StepReport>,
}

/// A small, fast-converging run configuration shared by the canned
/// mixes: combinational mining (window 0), a few random cycles, no
/// coverage recording, no shard sessions.
fn tiny_config() -> WireConfig {
    WireConfig {
        window: 0,
        random_cycles: Some(4),
        max_iterations: 8,
        record_coverage: false,
        shards: Some(0),
        ..WireConfig::default()
    }
}

/// A fixed pool of small designs of mixed input width, cycled across
/// every request — after the first round each design is a cache hit.
pub fn cache_friendly_mix() -> Mix {
    let sources: [(&str, &str); 4] = [
        (
            "and2",
            "module and2(input a, input b, output y); assign y = a & b; endmodule",
        ),
        (
            "mux2",
            "module mux2(input s, input a, input b, output y); assign y = s ? a : b; endmodule",
        ),
        (
            "maj3",
            "module maj3(input a, input b, input c, output y); \
             assign y = (a & b) | (a & c) | (b & c); endmodule",
        ),
        (
            "xor4",
            "module xor4(input a, input b, input c, input d, output y); \
             assign y = a ^ b ^ c ^ d; endmodule",
        ),
    ];
    Mix {
        name: "cache_friendly",
        requests: sources
            .iter()
            .map(|(name, source)| LoadRequest {
                name: (*name).to_string(),
                source: (*source).to_string(),
                config: tiny_config(),
            })
            .collect(),
    }
}

/// `unique` structurally distinct designs (inverter chains of varying
/// depth around an XOR, each under a unique module name) — every
/// submission is a cache miss as long as the ramp sends at most
/// `unique` requests.
pub fn cache_hostile_mix(unique: usize) -> Mix {
    let requests = (0..unique.max(1))
        .map(|i| {
            let mut body = String::from("a ^ b");
            for _ in 0..=(i % 6) {
                body = format!("~({body})");
            }
            let name = format!("h{i:05}");
            let source =
                format!("module {name}(input a, input b, output y); assign y = {body}; endmodule");
            LoadRequest {
                name,
                source,
                config: tiny_config(),
            }
        })
        .collect();
    Mix {
        name: "cache_hostile",
        requests,
    }
}

/// Index into a sorted sample at quantile `q` (nearest-rank on the
/// inclusive index range; 0.0 for an empty sample).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs one step: offers `rate` requests/second for
/// `ramp.step_seconds`, uniformly spaced, across
/// `ramp.connections` clients.
fn run_step(socket: &Path, mix: &Mix, rate: u32, ramp: &RampConfig) -> io::Result<StepReport> {
    let total = (u64::from(rate) * ramp.step_seconds).max(1);
    let interval = Duration::from_secs_f64(1.0 / f64::from(rate.max(1)));
    let next = AtomicU64::new(0);
    let start = Instant::now();
    let per_conn: Vec<(Vec<f64>, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..ramp.connections.max(1))
            .map(|_| {
                s.spawn(|| -> io::Result<(Vec<f64>, u64)> {
                    let mut client = ServeClient::connect(socket)?;
                    let mut latencies_ms = Vec::new();
                    let mut errors = 0u64;
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= total {
                            return Ok((latencies_ms, errors));
                        }
                        let scheduled = interval.mul_f64(k as f64);
                        if let Some(wait) = scheduled.checked_sub(start.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let req = &mix.requests[(k % mix.requests.len() as u64) as usize];
                        let outcome = client
                            .submit(&req.name, &req.source, &req.config)
                            .and_then(|(job, _)| client.wait(job));
                        match outcome {
                            Ok(_) => {
                                latencies_ms.push((start.elapsed() - scheduled).as_secs_f64() * 1e3)
                            }
                            Err(_) => errors += 1,
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker panicked"))
            .collect::<io::Result<Vec<_>>>()
    })?;
    let elapsed = start.elapsed().as_secs_f64();
    let mut latencies: Vec<f64> = per_conn
        .iter()
        .flat_map(|(l, _)| l.iter().copied())
        .collect();
    latencies.sort_by(f64::total_cmp);
    let errors: u64 = per_conn.iter().map(|(_, e)| e).sum();
    Ok(StepReport {
        offered_rps: rate,
        achieved_rps: latencies.len() as f64 / elapsed.max(f64::EPSILON),
        sent: total,
        completed: latencies.len() as u64,
        errors,
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
    })
}

/// Runs the whole ramp against a live socket.
///
/// # Errors
///
/// Fails on transport errors (the daemon vanished, the socket refused
/// a connection). Per-request engine errors are counted in
/// [`StepReport::errors`] instead.
pub fn run_ramp(socket: &Path, mix: &Mix, ramp: &RampConfig) -> io::Result<MixReport> {
    let mut steps = Vec::new();
    for rate in ramp.rates() {
        steps.push(run_step(socket, mix, rate, ramp)?);
    }
    let saturation_rps = steps.iter().map(|s| s.achieved_rps).fold(0.0, f64::max);
    Ok(MixReport {
        mix: mix.name,
        saturation_rps,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_schedule_caps_at_the_target() {
        let ramp = RampConfig {
            initial_rps: 4,
            increment_rps: 8,
            target_rps: 17,
            step_seconds: 2,
            connections: 2,
        };
        assert_eq!(ramp.rates(), vec![4, 12, 17]);
        assert_eq!(ramp.total_requests(), 2 * (4 + 12 + 17));
    }

    #[test]
    fn hostile_mix_designs_are_pairwise_distinct() {
        let mix = cache_hostile_mix(40);
        let mut sources: Vec<&str> = mix.requests.iter().map(|r| r.source.as_str()).collect();
        sources.sort_unstable();
        sources.dedup();
        assert_eq!(sources.len(), 40);
    }

    #[test]
    fn percentiles_are_monotone_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 0.50), 51.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }
}
