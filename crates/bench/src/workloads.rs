//! Workload generators: the directed tests and stimulus recipes the
//! experiments run.

use gm_rtl::{Bv, Module};
use gm_sim::InputVector;

/// The paper's §6 directed test for the two-port arbiter (Figure 7's
/// trace rows, extended by one warm-up vector).
pub fn arbiter2_directed(module: &Module) -> Vec<InputVector> {
    let req0 = module.require("req0").expect("arbiter2 has req0");
    let req1 = module.require("req1").expect("arbiter2 has req1");
    [(0u64, 0u64), (1, 0), (1, 1), (0, 1), (1, 1)]
        .into_iter()
        .map(|(a, b)| vec![(req0, Bv::new(a, 1)), (req1, Bv::new(b, 1))])
        .collect()
}

/// A minimal directed test for `cex_small`: the two "obvious" vectors a
/// designer checks first, leaving most expression polarity uncovered.
pub fn cex_small_directed(module: &Module) -> Vec<InputVector> {
    let a = module.require("a").expect("cex_small has a");
    let b = module.require("b").expect("cex_small has b");
    let c = module.require("c").expect("cex_small has c");
    [(0u64, 0u64, 0u64), (1, 1, 0)]
        .into_iter()
        .map(|(va, vb, vc)| {
            vec![
                (a, Bv::new(va, 1)),
                (b, Bv::new(vb, 1)),
                (c, Bv::new(vc, 1)),
            ]
        })
        .collect()
}

/// A sparse directed test for the four-port arbiter: only port 0 ever
/// requests — the happy path, far from full coverage.
pub fn arbiter4_directed(module: &Module) -> Vec<InputVector> {
    let reqs: Vec<_> = ["req0", "req1", "req2", "req3"]
        .iter()
        .map(|n| module.require(n).expect("arbiter4 has reqs"))
        .collect();
    (0..4)
        .map(|t| {
            reqs.iter()
                .enumerate()
                .map(|(i, &r)| (r, Bv::from_bool(i == 0 && t % 2 == 0)))
                .collect()
        })
        .collect()
}

/// A "well-behaved" directed test for the Rigel-like fetch stage: mostly
/// straight-line fetching with occasional stalls and one scripted branch
/// redirect — the kind of test a validation engineer writes first, which
/// leaves corner conditions uncovered (paper Table 3's directed row).
pub fn fetch_directed(module: &Module, cycles: usize) -> Vec<InputVector> {
    let stall = module.require("stall_in").expect("fetch has stall_in");
    let mis = module
        .require("branch_mispredict")
        .expect("fetch has branch_mispredict");
    let bpc = module.require("branch_pc").expect("fetch has branch_pc");
    let rdvl = module
        .require("icache_rdvl_i")
        .expect("fetch has icache_rdvl_i");
    let mut out = Vec::with_capacity(cycles);
    for t in 0..cycles {
        let stalling = t % 17 == 5;
        let branching = t % 31 == 20;
        out.push(vec![
            (stall, Bv::from_bool(stalling)),
            (mis, Bv::from_bool(branching)),
            (bpc, Bv::new((t as u64 / 31) & 0xf, 4)),
            (rdvl, Bv::from_bool(!stalling)),
        ]);
    }
    out
}

/// A directed test for the decode stage: walks the documented opcodes
/// with "typical" operands, never the illegal encodings.
pub fn decode_directed(module: &Module, cycles: usize) -> Vec<InputVector> {
    let instr = module.require("instr").expect("decode has instr");
    let valid = module
        .require("instr_valid")
        .expect("decode has instr_valid");
    let mut out = Vec::with_capacity(cycles);
    for t in 0..cycles {
        let opcode = (t % 7) as u64; // skips opcode 7 (illegal)
        let rd = ((t / 3) % 8) as u64;
        let rs = ((t / 5) % 8) as u64;
        let imm = (t % 8) as u64;
        let word = (opcode << 9) | (rd << 6) | (rs << 3) | imm;
        out.push(vec![(instr, Bv::new(word, 12)), (valid, Bv::one_bit())]);
    }
    out
}

/// A directed test for the writeback stage: alternating ALU and memory
/// writebacks with "nice" data values and no stall interaction.
pub fn wb_directed(module: &Module, cycles: usize) -> Vec<InputVector> {
    let mem_valid = module.require("mem_valid").expect("wb has mem_valid");
    let alu_valid = module.require("alu_valid").expect("wb has alu_valid");
    let stall = module.require("stall_in").expect("wb has stall_in");
    let mem_data = module.require("mem_data").expect("wb has mem_data");
    let alu_data = module.require("alu_data").expect("wb has alu_data");
    let dest = module.require("dest").expect("wb has dest");
    let mut out = Vec::with_capacity(cycles);
    for t in 0..cycles {
        let is_mem = t % 2 == 0;
        out.push(vec![
            (mem_valid, Bv::from_bool(is_mem)),
            (alu_valid, Bv::from_bool(!is_mem)),
            (stall, Bv::zero_bit()),
            (mem_data, Bv::new((t as u64) & 0xf, 4)),
            (alu_data, Bv::new((t as u64 + 5) & 0xf, 4)),
            (dest, Bv::new((t as u64 % 7) + 1, 3)),
        ]);
    }
    out
}

/// Looks up the directed workload for a Rigel-like module by name.
pub fn rigel_directed(module: &Module, cycles: usize) -> Vec<InputVector> {
    match module.name() {
        "fetch_stage" => fetch_directed(module, cycles),
        "decode_stage" => decode_directed(module, cycles),
        "wb_stage" => wb_directed(module, cycles),
        other => panic!("no directed workload for `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_sim::{NopObserver, TestSuite};

    #[test]
    fn directed_workloads_simulate_cleanly() {
        for (module, cycles) in [
            (gm_designs::fetch_stage(), 100),
            (gm_designs::decode_stage(), 100),
            (gm_designs::wb_stage(), 100),
        ] {
            let vectors = rigel_directed(&module, cycles);
            assert_eq!(vectors.len(), cycles);
            let mut suite = TestSuite::new();
            suite.push("directed", vectors);
            let traces = suite.run(&module, &mut NopObserver).unwrap();
            assert_eq!(traces[0].len(), cycles, "{}", module.name());
        }
    }

    #[test]
    fn arbiter_directed_matches_paper_rows() {
        let m = gm_designs::arbiter2();
        let v = arbiter2_directed(&m);
        assert_eq!(v.len(), 5);
        let req0 = m.require("req0").unwrap();
        assert_eq!(v[1][0], (req0, Bv::one_bit()));
    }
}
