//! CI bench smoke for the mining layer: measures (a) the trace-to-
//! dataset extraction pipeline (simulate + `Dataset::add_trace` with a
//! temporal horizon) in rows/second through both simulation backends,
//! and (b) the coverage-ranked refinement loop's iterations-to-closure
//! against the random-only engine on the catalog designs, emitting a
//! `BENCH_mine.json` record for the performance trajectory.
//!
//! The refinement section doubles as an effectiveness ratchet: the
//! ranked loop must never need *more* iterations than random-only
//! stimulus, and must be strictly faster in aggregate.
//!
//! Usage: `bench_mine [OUTPUT_PATH]` (default `BENCH_mine.json`).

use gm_mine::{Dataset, MiningSpec};
use gm_rtl::{cone_of, elaborate, Module};
use gm_sim::{
    collect_vectors, run_segment, CompiledModule, NopBatchObserver, NopObserver, RandomStimulus,
};
use goldmine::{ClosureOutcome, Engine, EngineConfig, RefineConfig, SeedStimulus};
use std::fmt::Write as _;
use std::time::Instant;

const SEGMENTS: u64 = 64;
const CYCLES: u64 = 256;
const WINDOW: u32 = 2;
const HORIZON: u32 = 2;

struct ExtractRecord {
    name: &'static str,
    backend: &'static str,
    rows: usize,
    rows_per_sec: f64,
}

/// Times one warm-up plus `reps` timed runs of `f`, which must return
/// the number of dataset rows it extracted.
fn rows_per_sec(reps: u32, mut f: impl FnMut() -> usize) -> (usize, f64) {
    let mut rows = f();
    let start = Instant::now();
    for _ in 0..reps {
        rows = f();
    }
    let per_run = start.elapsed().as_secs_f64() / f64::from(reps);
    (rows, rows as f64 / per_run)
}

/// Measures the simulate-then-extract pipeline on every output bit of
/// `module`, with the dataset recording a temporal lookahead horizon.
fn measure_extraction(name: &'static str, module: &Module) -> Vec<ExtractRecord> {
    let elab = elaborate(module).expect("catalog designs elaborate");
    let mut specs: Vec<MiningSpec> = Vec::new();
    for out in module.outputs() {
        let cone = cone_of(module, &elab, out);
        for bit in 0..module.signal(out).width() {
            specs.push(MiningSpec::for_output(module, &elab, &cone, bit, WINDOW));
        }
    }
    let segments: Vec<Vec<_>> = (0..SEGMENTS)
        .map(|seed| collect_vectors(&mut RandomStimulus::new(module, seed, CYCLES)))
        .collect();
    let compiled = CompiledModule::compile(module).expect("catalog designs compile");

    let interp = rows_per_sec(3, || {
        let mut datasets: Vec<Dataset> = specs
            .iter()
            .map(|_| Dataset::with_horizon(HORIZON))
            .collect();
        for vectors in &segments {
            let trace = run_segment(module, vectors, &mut NopObserver).unwrap();
            for (spec, data) in specs.iter().zip(&mut datasets) {
                data.add_trace(spec, &trace);
            }
        }
        datasets.iter().map(|d| d.rows().len()).sum()
    });
    let comp = rows_per_sec(3, || {
        let mut datasets: Vec<Dataset> = specs
            .iter()
            .map(|_| Dataset::with_horizon(HORIZON))
            .collect();
        for vectors in &segments {
            let trace = compiled.run_segment(module, vectors, &mut NopBatchObserver);
            for (spec, data) in specs.iter().zip(&mut datasets) {
                data.add_trace(spec, &trace);
            }
        }
        datasets.iter().map(|d| d.rows().len()).sum()
    });
    vec![
        ExtractRecord {
            name,
            backend: "interpreter",
            rows: interp.0,
            rows_per_sec: interp.1,
        },
        ExtractRecord {
            name,
            backend: "compiled",
            rows: comp.0,
            rows_per_sec: comp.1,
        },
    ]
}

struct RefineRecord {
    name: &'static str,
    base_iters: u32,
    refined_iters: u32,
    base_covered: usize,
    refined_covered: usize,
    refined_secs: f64,
}

fn covered(outcome: &ClosureOutcome) -> usize {
    let r = outcome.iterations.last().unwrap().coverage.unwrap();
    r.toggle.covered + r.fsm.map_or(0, |f| f.covered)
}

fn run_engine(module: &Module, window: u32, refine: RefineConfig) -> (ClosureOutcome, f64) {
    let config = EngineConfig {
        window,
        stimulus: SeedStimulus::Random { cycles: 4 },
        record_coverage: true,
        refine,
        ..EngineConfig::default()
    };
    let start = Instant::now();
    let outcome = Engine::new(module, config).unwrap().run().unwrap();
    (outcome, start.elapsed().as_secs_f64())
}

fn measure_refinement(name: &'static str) -> RefineRecord {
    let design = gm_designs::by_name(name).expect("catalog design");
    let module = design.module();
    let (base, _) = run_engine(&module, design.window, RefineConfig::default());
    let refined_cfg = RefineConfig {
        variants: 4,
        extra_cycles: 16,
        max_absorb: 2,
    };
    let (refined, refined_secs) = run_engine(&module, design.window, refined_cfg);
    assert!(base.converged && refined.converged, "{name}: must converge");
    RefineRecord {
        name,
        base_iters: base.iteration_count(),
        refined_iters: refined.iteration_count(),
        base_covered: covered(&base),
        refined_covered: covered(&refined),
        refined_secs,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_mine.json".to_string());

    let extract: Vec<ExtractRecord> = [
        ("arbiter4", gm_designs::arbiter4()),
        ("b12_lite", gm_designs::b12_lite()),
    ]
    .iter()
    .flat_map(|(name, module)| measure_extraction(name, module))
    .collect();
    let refine: Vec<RefineRecord> = ["b01", "b02", "b09"]
        .into_iter()
        .map(measure_refinement)
        .collect();

    // Hand-rolled JSON: the vendored serde shim is a no-op.
    let mut json = String::from("{\n  \"bench\": \"mine\",\n");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"segments\": {SEGMENTS}, \"cycles_per_segment\": {CYCLES}, \
         \"window\": {WINDOW}, \"horizon\": {HORIZON}}},"
    );
    json.push_str("  \"extraction\": [\n");
    for (i, r) in extract.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"design\": \"{}\", \"backend\": \"{}\", \"rows\": {}, \"rows_per_sec\": {:.0}}}",
            r.name, r.backend, r.rows, r.rows_per_sec
        );
        json.push_str(if i + 1 < extract.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"refinement\": [\n");
    for (i, r) in refine.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"design\": \"{}\", \"base_iterations\": {}, \"refined_iterations\": {}, \
             \"base_covered\": {}, \"refined_covered\": {}, \"refined_secs\": {:.3}}}",
            r.name,
            r.base_iters,
            r.refined_iters,
            r.base_covered,
            r.refined_covered,
            r.refined_secs
        );
        json.push_str(if i + 1 < refine.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_mine.json");
    print!("{json}");

    for r in &refine {
        eprintln!(
            "{}: {} -> {} iterations, {} -> {} covered",
            r.name, r.base_iters, r.refined_iters, r.base_covered, r.refined_covered
        );
    }
    // Effectiveness ratchet: ranked refinement never costs iterations
    // or coverage on any design, and wins iterations in aggregate.
    for r in &refine {
        assert!(
            r.refined_iters <= r.base_iters,
            "{}: refinement regressed to {} iterations (random-only: {})",
            r.name,
            r.refined_iters,
            r.base_iters
        );
        assert!(
            r.refined_covered >= r.base_covered,
            "{}: refinement lost coverage ({} < {})",
            r.name,
            r.refined_covered,
            r.base_covered
        );
    }
    let (base_total, refined_total): (u32, u32) = refine.iter().fold((0, 0), |(b, r), rec| {
        (b + rec.base_iters, r + rec.refined_iters)
    });
    assert!(
        refined_total < base_total,
        "refinement must win iterations in aggregate ({refined_total} vs {base_total})"
    );
}
