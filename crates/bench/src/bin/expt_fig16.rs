//! Regenerates E7 / Figure 16.
fn main() {
    let rows = gm_bench::fig16(&gm_bench::fig16_cases());
    gm_bench::print_fig16(&rows);
}
