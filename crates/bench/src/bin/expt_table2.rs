//! Regenerates E6 / Table 2.
fn main() {
    let (total, rows) = gm_bench::table2();
    gm_bench::print_table2(total, &rows);
}
