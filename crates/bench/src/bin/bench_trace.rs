//! CI bench smoke for the flight recorder: proves instrumentation is
//! near-free when the recorder is off, and reports what it costs when
//! on.
//!
//! The kernel is the coverage-attached b12_lite batch simulation (the
//! same inner loop `bench_sim` ratchets). Three variants run
//! interleaved, min-of-reps:
//!
//! * **baseline** — the uninstrumented pre-trace entry path
//!   (`observe_compiled_baseline`), i.e. exactly the code that ran
//!   before the recorder existed;
//! * **off** — the instrumented entry (`observe_compiled`) with no
//!   sink installed: one relaxed atomic load + branch per batch call;
//! * **on** — the instrumented entry recording into a thread-local
//!   sink (informational; the recorder is opt-in).
//!
//! The binary asserts the enforced bound: recorder-off stays within
//! `MAX_OFF_OVERHEAD` of the pre-trace baseline. Shared CI runners
//! inject transient multi-percent noise even into min-of-reps floors,
//! so the gate pools: if the bound is not met after one round of reps,
//! further rounds accumulate into the same per-variant minimums (up to
//! `MAX_ROUNDS`). Noise only ever *adds* time, so the pooled minimum
//! converges onto the true floor of each variant — an inert recorder
//! passes within a round or two, while a real systematic cost slows
//! every off rep in every round and still trips the assert.
//!
//! Usage: `bench_trace [OUTPUT_PATH]` (default `BENCH_trace.json`).

use gm_coverage::CoverageSuite;
use gm_sim::{collect_vectors, CompiledModule, RandomStimulus, TestSuite};
use std::fmt::Write as _;
use std::time::Instant;

const SEGMENTS: u64 = 1024;
const CYCLES: u64 = 128;
const LANE_BLOCK: usize = 4;
const REPS_PER_ROUND: u32 = 100;
const MAX_ROUNDS: u32 = 10;

/// The enforced bound: recorder-off wall time must stay within 2% of
/// the pre-trace baseline (ISSUE acceptance; the instrumentation is one
/// relaxed load + branch per batch call, so the real gap is ~0).
const MAX_OFF_OVERHEAD: f64 = 0.02;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_trace.json".to_string());
    let module = gm_designs::b12_lite();
    let probed = CompiledModule::compile(&module).expect("b12_lite compiles");
    let mut suite = TestSuite::new();
    for seed in 0..SEGMENTS {
        suite.push(
            format!("s{seed}"),
            collect_vectors(&mut RandomStimulus::new(&module, seed, CYCLES)),
        );
    }

    let mut kernel_baseline = || {
        let mut cov = CoverageSuite::new(&module);
        suite.observe_compiled_baseline(&module, &probed, &mut cov, LANE_BLOCK);
        std::hint::black_box(cov.report());
    };
    let mut kernel_off = || {
        let mut cov = CoverageSuite::new(&module);
        suite.observe_compiled(&module, &probed, &mut cov, LANE_BLOCK);
        std::hint::black_box(cov.report());
    };
    let sink = gm_trace::TraceSink::new();
    let mut kernel_on = || {
        let _guard = gm_trace::push_thread_sink(sink.clone());
        let mut cov = CoverageSuite::new(&module);
        suite.observe_compiled(&module, &probed, &mut cov, LANE_BLOCK);
        std::hint::black_box(cov.report());
    };

    // Warm up every variant, then interleave the timed reps so slow
    // drift (thermal, noisy neighbors) hits all three equally; pool
    // per-variant minimums across rounds until the gate is satisfied.
    kernel_baseline();
    kernel_off();
    kernel_on();
    let mut best = [f64::INFINITY; 3];
    let mut rounds = 0;
    while rounds < MAX_ROUNDS {
        rounds += 1;
        for _ in 0..REPS_PER_ROUND {
            for (slot, kernel) in [
                (0usize, &mut kernel_baseline as &mut dyn FnMut()),
                (1, &mut kernel_off),
                (2, &mut kernel_on),
            ] {
                let start = Instant::now();
                kernel();
                best[slot] = best[slot].min(start.elapsed().as_secs_f64());
            }
        }
        let overhead = best[1] / best[0] - 1.0;
        eprintln!(
            "round {rounds}: base {:.3}ms off {:.3}ms on {:.3}ms (off {:+.2}%)",
            best[0] * 1e3,
            best[1] * 1e3,
            best[2] * 1e3,
            overhead * 100.0
        );
        if overhead <= MAX_OFF_OVERHEAD {
            break;
        }
    }
    let [baseline_s, off_s, on_s] = best;
    assert!(!sink.is_empty(), "the recorder-on variant must record");

    let total = (SEGMENTS * CYCLES) as f64;
    let off_overhead = off_s / baseline_s - 1.0;
    let on_overhead = on_s / baseline_s - 1.0;

    // Hand-rolled JSON: the vendored serde shim is a no-op.
    let mut json = String::from("{\n  \"bench\": \"trace_recorder\",\n");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"design\": \"b12_lite\", \"segments\": {SEGMENTS}, \
         \"cycles_per_segment\": {CYCLES}, \"lane_block\": {LANE_BLOCK}, \
         \"reps\": {}}},",
        rounds * REPS_PER_ROUND
    );
    let _ = writeln!(
        json,
        "  \"baseline_vps\": {:.0},\n  \"recorder_off_vps\": {:.0},\n  \
         \"recorder_on_vps\": {:.0},",
        total / baseline_s,
        total / off_s,
        total / on_s,
    );
    let _ = writeln!(
        json,
        "  \"recorder_off_overhead\": {off_overhead:.4},\n  \
         \"recorder_on_overhead\": {on_overhead:.4},\n  \
         \"max_off_overhead\": {MAX_OFF_OVERHEAD}\n}}"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_trace.json");
    print!("{json}");
    eprintln!(
        "recorder off: {:+.2}% vs pre-trace baseline (bound {:+.0}%); on: {:+.2}%",
        off_overhead * 100.0,
        MAX_OFF_OVERHEAD * 100.0,
        on_overhead * 100.0
    );

    assert!(
        off_overhead <= MAX_OFF_OVERHEAD,
        "recorder-off instrumentation costs {:.2}% over the pre-trace baseline \
         (bound {:.0}%)",
        off_overhead * 100.0,
        MAX_OFF_OVERHEAD * 100.0,
    );
}
