//! Regenerates E5 / Figure 15.
fn main() {
    let design = std::env::args().nth(1).unwrap_or_else(|| "b12_lite".into());
    let r = gm_bench::fig15(&design, 200);
    gm_bench::print_fig15(&r);
}
