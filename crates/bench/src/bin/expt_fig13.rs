//! Regenerates E2 / Figure 13.
fn main() {
    let series = gm_bench::fig13(32);
    gm_bench::print_fig13(&series);
}
