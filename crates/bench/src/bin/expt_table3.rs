//! Regenerates E8 / Table 3.
fn main() {
    let cycles = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let rows = gm_bench::table3(cycles);
    gm_bench::print_table3(&rows);
}
