//! CI load smoke for the `gmserved` closure service: ramps a stepped
//! request rate against a live socket (or a self-hosted in-process
//! service when no socket is given), records per-step p50/p95/p99
//! latency and the saturation throughput for a cache-friendly and a
//! cache-hostile mix, scrapes the metrics endpoint once, and writes
//! `BENCH_serve.json` next to `BENCH_sim.json`.
//!
//! ```text
//! bench_serve [--socket PATH] [--out PATH] [--initial-rps N]
//!             [--increment-rps N] [--target-rps N] [--step-seconds N]
//!             [--connections N] [--shutdown]
//! ```
//!
//! `--shutdown` sends a clean shutdown to the daemon after the run
//! (always done for the self-hosted service).

use gm_bench::load::{cache_friendly_mix, cache_hostile_mix, run_ramp, MixReport, RampConfig};
use gm_serve::{bind_unix, serve_unix, ClosureService, ServeClient, ServeConfig};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

struct Args {
    socket: Option<PathBuf>,
    out: PathBuf,
    ramp: RampConfig,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        socket: None,
        out: PathBuf::from("BENCH_serve.json"),
        ramp: RampConfig::default(),
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--socket" => parsed.socket = Some(PathBuf::from(value("--socket")?)),
            "--out" => parsed.out = PathBuf::from(value("--out")?),
            "--initial-rps" => parsed.ramp.initial_rps = num(&value("--initial-rps")?)?,
            "--increment-rps" => parsed.ramp.increment_rps = num(&value("--increment-rps")?)?,
            "--target-rps" => parsed.ramp.target_rps = num(&value("--target-rps")?)?,
            "--step-seconds" => parsed.ramp.step_seconds = num(&value("--step-seconds")?)?,
            "--connections" => parsed.ramp.connections = num(&value("--connections")?)?,
            "--shutdown" => parsed.shutdown = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(parsed)
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number '{s}'"))
}

fn mix_json(report: &MixReport) -> String {
    let mut json = String::new();
    let _ = writeln!(
        json,
        "    {{\"name\": \"{}\", \"saturation_rps\": {:.2}, \"steps\": [",
        report.mix, report.saturation_rps
    );
    for (i, s) in report.steps.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"offered_rps\": {}, \"achieved_rps\": {:.2}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"sent\": {}, \"completed\": {}, \"errors\": {}}}",
            s.offered_rps, s.achieved_rps, s.p50_ms, s.p95_ms, s.p99_ms, s.sent, s.completed, s.errors
        );
        json.push_str(if i + 1 < report.steps.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]}");
    json
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_serve: {e}");
            std::process::exit(2);
        }
    };

    // Self-host an in-process service when no daemon socket was given,
    // so `bench_serve` runs standalone in CI and on a laptop.
    let (socket, hosted) = match &args.socket {
        Some(path) => (path.clone(), None),
        None => {
            let path =
                std::env::temp_dir().join(format!("gm_bench_serve_{}.sock", std::process::id()));
            let listener = bind_unix(&path).expect("bind self-hosted socket");
            let service = Arc::new(ClosureService::new(ServeConfig::default()));
            let thread = std::thread::spawn(move || serve_unix(service, listener));
            (path, Some(thread))
        }
    };

    let mixes = [
        cache_friendly_mix(),
        cache_hostile_mix(args.ramp.total_requests() as usize),
    ];
    let reports: Vec<MixReport> = mixes
        .iter()
        .map(|mix| {
            eprintln!("bench_serve: ramping mix '{}'", mix.name);
            run_ramp(&socket, mix, &args.ramp).expect("load run failed")
        })
        .collect();

    // One scrape of the metrics endpoint proves the exposition format
    // end to end and records the cache behaviour the mixes induced.
    let mut client = ServeClient::connect(&socket).expect("connect for metrics scrape");
    let metrics = client.metrics().expect("metrics scrape");
    let stats = client.stats().expect("stats");
    if args.shutdown || hosted.is_some() {
        client.shutdown().expect("shutdown");
    }
    if let Some(thread) = hosted {
        thread.join().expect("server thread").expect("serve_unix");
        let _ = std::fs::remove_file(&socket);
    }

    let mut json = String::from("{\n  \"bench\": \"serve_load\",\n");
    let _ = writeln!(
        json,
        "  \"ramp\": {{\"initial_rps\": {}, \"increment_rps\": {}, \"target_rps\": {}, \"step_seconds\": {}, \"connections\": {}}},",
        args.ramp.initial_rps,
        args.ramp.increment_rps,
        args.ramp.target_rps,
        args.ramp.step_seconds,
        args.ramp.connections
    );
    let _ = writeln!(
        json,
        "  \"serve_stats\": {{\"submitted\": {}, \"completed\": {}, \"failed\": {}, \"cancelled\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"cache_evictions\": {}, \"cache_bytes\": {}, \"compiled_reused\": {}}},",
        stats.submitted,
        stats.completed,
        stats.failed,
        stats.cancelled,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.cache_bytes,
        stats.compiled_reused
    );
    json.push_str("  \"mixes\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str(&mix_json(r));
        json.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&args.out, &json).expect("write BENCH_serve.json");
    print!("{json}");
    eprintln!("--- metrics scrape (first lines) ---");
    for line in metrics.lines().take(9) {
        eprintln!("{line}");
    }

    // Acceptance: both mixes ran, every step's percentiles are
    // ordered, and the service sustained some throughput.
    assert!(reports.len() >= 2, "need at least two mixes");
    for r in &reports {
        assert!(
            r.saturation_rps > 0.0,
            "mix '{}' sustained no throughput",
            r.mix
        );
        for s in &r.steps {
            assert!(
                s.p50_ms <= s.p95_ms && s.p95_ms <= s.p99_ms,
                "mix '{}' step {} has disordered percentiles",
                r.mix,
                s.offered_rps
            );
            assert!(
                s.errors == 0,
                "mix '{}' step {} had {} request errors",
                r.mix,
                s.offered_rps,
                s.errors
            );
        }
    }
    let friendly_hits = stats.cache_hits;
    eprintln!(
        "saturation: {}; cache hits {} / misses {}",
        reports
            .iter()
            .map(|r| format!("{} {:.1} rps", r.mix, r.saturation_rps))
            .collect::<Vec<_>>()
            .join(", "),
        friendly_hits,
        stats.cache_misses
    );
}
