//! CI bench smoke for the simulation backends: runs the sim kernels
//! once per backend on catalog designs and emits a `BENCH_sim.json`
//! throughput record (vectors/second, where one vector is one stimulus
//! cycle of one segment) for the performance trajectory.
//!
//! Usage: `bench_sim [OUTPUT_PATH]` (default `BENCH_sim.json`).

use gm_coverage::CoverageSuite;
use gm_rtl::Module;
use gm_sim::{collect_vectors, CompiledModule, RandomStimulus, TestSuite};
use std::fmt::Write as _;
use std::time::Instant;

const SEGMENTS: u64 = 64;
const CYCLES: u64 = 128;

struct Record {
    name: &'static str,
    interpreter_vps: f64,
    compiled_scalar_vps: f64,
    compiled_batch_vps: f64,
}

/// Times `f` (one warm-up call plus `reps` timed calls) and returns
/// vectors/second.
fn vps(total_vectors: u64, reps: u32, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    let per_run = start.elapsed().as_secs_f64() / f64::from(reps);
    total_vectors as f64 / per_run
}

fn measure(name: &'static str, module: &Module) -> Record {
    let compiled = CompiledModule::compile(module).expect("catalog designs compile");
    let mut suite = TestSuite::new();
    for seed in 0..SEGMENTS {
        suite.push(
            format!("s{seed}"),
            collect_vectors(&mut RandomStimulus::new(module, seed, CYCLES)),
        );
    }
    let total = SEGMENTS * CYCLES;
    let interpreter_vps = vps(total, 1, || {
        let mut cov = CoverageSuite::new(module);
        suite.run(module, &mut cov).unwrap();
        std::hint::black_box(cov.report());
    });
    let compiled_scalar_vps = vps(total, 3, || {
        let mut cov = CoverageSuite::new(module);
        for seg in suite.segments() {
            compiled.run_segment(module, &seg.vectors, &mut cov);
        }
        std::hint::black_box(cov.report());
    });
    let compiled_batch_vps = vps(total, 10, || {
        let mut cov = CoverageSuite::new(module);
        suite.observe_compiled(module, &compiled, &mut cov);
        std::hint::black_box(cov.report());
    });
    Record {
        name,
        interpreter_vps,
        compiled_scalar_vps,
        compiled_batch_vps,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let designs: Vec<(&'static str, Module)> = vec![
        ("arbiter4", gm_designs::arbiter4()),
        ("b12_lite", gm_designs::b12_lite()),
        ("b18_lite", gm_designs::b18_lite()),
    ];
    let records: Vec<Record> = designs
        .iter()
        .map(|(name, module)| measure(name, module))
        .collect();

    // Hand-rolled JSON: the vendored serde shim is a no-op.
    let mut json = String::from("{\n  \"bench\": \"sim_backends\",\n");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"segments\": {SEGMENTS}, \"cycles_per_segment\": {CYCLES}, \"coverage\": true}},"
    );
    json.push_str("  \"designs\": [\n");
    for (i, r) in records.iter().enumerate() {
        let speedup_batch = r.compiled_batch_vps / r.interpreter_vps;
        let speedup_scalar = r.compiled_scalar_vps / r.interpreter_vps;
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"interpreter_vps\": {:.0}, \"compiled_scalar_vps\": {:.0}, \"compiled_batch_vps\": {:.0}, \"scalar_speedup\": {:.2}, \"batch_speedup\": {:.2}}}",
            r.name,
            r.interpreter_vps,
            r.compiled_scalar_vps,
            r.compiled_batch_vps,
            speedup_scalar,
            speedup_batch
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    print!("{json}");

    let best = records
        .iter()
        .map(|r| r.compiled_batch_vps / r.interpreter_vps)
        .fold(f64::MIN, f64::max);
    eprintln!("best 64-lane speedup over interpreter: {best:.1}x");
    // The acceptance bar for the compiled backend: >= 10x vectors/sec
    // on at least one catalog design.
    assert!(
        best >= 10.0,
        "64-lane compiled backend regressed below 10x the interpreter ({best:.1}x)"
    );
}
