//! CI bench smoke for the simulation backends: runs the sim kernels
//! once per backend on catalog designs and emits a `BENCH_sim.json`
//! throughput record (vectors/second, where one vector is one stimulus
//! cycle of one segment) for the performance trajectory.
//!
//! Per design it measures the interpreter, the compiled scalar
//! executor, and the compiled batch executor at every supported
//! lane-block width (W ∈ {1, 2, 4, 8} → 64–512 lanes per pass), each
//! W both coverage-attached (probed tape + `CoverageSuite`) and bare
//! (probe-free tape + `NopBatchObserver`) — the fused-probe win and
//! the wide-lane win are both visible run-over-run.
//!
//! The binary asserts ratcheted per-design floors (see `FLOORS`), so a
//! wide-design regression can't hide behind a small-design win.
//!
//! Usage: `bench_sim [OUTPUT_PATH]` (default `BENCH_sim.json`).

use gm_coverage::CoverageSuite;
use gm_rtl::Module;
use gm_sim::{
    collect_vectors, CompileOptions, CompiledModule, NopBatchObserver, RandomStimulus, TestSuite,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Enough segments to fill all 512 lanes of the widest block.
const SEGMENTS: u64 = 512;
const CYCLES: u64 = 128;
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Ratcheted coverage-attached floors: (design, min batch-over-
/// interpreter speedup at the best W, min worst-W-over-W=1 ratio).
/// Measured on the CI-class single-core runner and set a safety margin
/// below the observed numbers; raise them when the numbers move up.
///
/// History: the pre-wide-lane floor was a single >= 10x on any design.
/// PR 7 (fused probes + cheap-hash observers + lane blocks) measured
/// ~44-56x on arbiter4 and ~13-20x on b12_lite, i.e. ~3.7x the
/// absolute coverage-attached vectors/sec of the PR 5 64-lane backend
/// on b12_lite, so the per-design ratchets sit below those with room
/// for runner noise (the ratio is extra-noisy on b12_lite because the
/// cheap-hash work sped the interpreter denominator up too). The
/// worst-width ratio catches a wide-executor
/// regression: every lane block must stay within striking distance of
/// the 64-lane backend (the best W is design-dependent, and on tiny
/// designs W=1 often wins — the wide win is amortized dispatch, which
/// grows with design size).
const FLOORS: [(&str, f64, f64); 2] = [("arbiter4", 35.0, 0.5), ("b12_lite", 11.0, 0.5)];

struct WidthRecord {
    w: usize,
    cov_vps: f64,
    bare_vps: f64,
}

struct Record {
    name: &'static str,
    interpreter_vps: f64,
    compiled_scalar_vps: f64,
    widths: Vec<WidthRecord>,
}

impl Record {
    fn best_cov(&self) -> &WidthRecord {
        self.widths
            .iter()
            .max_by(|a, b| a.cov_vps.total_cmp(&b.cov_vps))
            .expect("widths measured")
    }

    fn w1_cov_vps(&self) -> f64 {
        self.widths.iter().find(|r| r.w == 1).expect("W=1").cov_vps
    }

    fn worst_cov(&self) -> &WidthRecord {
        self.widths
            .iter()
            .min_by(|a, b| a.cov_vps.total_cmp(&b.cov_vps))
            .expect("widths measured")
    }
}

/// Times `f` (one warm-up call plus `reps` timed calls) and returns
/// vectors/second.
fn vps(total_vectors: u64, reps: u32, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    let per_run = start.elapsed().as_secs_f64() / f64::from(reps);
    total_vectors as f64 / per_run
}

fn measure(name: &'static str, module: &Module) -> Record {
    let probed = CompiledModule::compile(module).expect("catalog designs compile");
    let bare = CompiledModule::compile_with(module, CompileOptions { probes: false })
        .expect("catalog designs compile");
    let mut suite = TestSuite::new();
    for seed in 0..SEGMENTS {
        suite.push(
            format!("s{seed}"),
            collect_vectors(&mut RandomStimulus::new(module, seed, CYCLES)),
        );
    }
    let total = SEGMENTS * CYCLES;
    let interpreter_vps = vps(total, 1, || {
        let mut cov = CoverageSuite::new(module);
        suite.run(module, &mut cov).unwrap();
        std::hint::black_box(cov.report());
    });
    let compiled_scalar_vps = vps(total, 1, || {
        let mut cov = CoverageSuite::new(module);
        for seg in suite.segments() {
            probed.run_segment(module, &seg.vectors, &mut cov);
        }
        std::hint::black_box(cov.report());
    });
    let widths = WIDTHS
        .iter()
        .map(|&w| {
            let cov_vps = vps(total, 5, || {
                let mut cov = CoverageSuite::new(module);
                suite.observe_compiled(module, &probed, &mut cov, w);
                std::hint::black_box(cov.report());
            });
            let bare_vps = vps(total, 5, || {
                suite.observe_compiled(module, &bare, &mut NopBatchObserver, w);
            });
            WidthRecord {
                w,
                cov_vps,
                bare_vps,
            }
        })
        .collect();
    Record {
        name,
        interpreter_vps,
        compiled_scalar_vps,
        widths,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let designs: Vec<(&'static str, Module)> = vec![
        ("arbiter4", gm_designs::arbiter4()),
        ("b12_lite", gm_designs::b12_lite()),
        ("b18_lite", gm_designs::b18_lite()),
    ];
    let records: Vec<Record> = designs
        .iter()
        .map(|(name, module)| measure(name, module))
        .collect();

    // Hand-rolled JSON: the vendored serde shim is a no-op.
    let mut json = String::from("{\n  \"bench\": \"sim_backends\",\n");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"segments\": {SEGMENTS}, \"cycles_per_segment\": {CYCLES}, \"lane_blocks\": [1, 2, 4, 8]}},"
    );
    json.push_str("  \"designs\": [\n");
    for (i, r) in records.iter().enumerate() {
        let best = r.best_cov();
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"interpreter_vps\": {:.0}, \"compiled_scalar_vps\": {:.0}, \"batch\": [",
            r.name, r.interpreter_vps, r.compiled_scalar_vps,
        );
        for (j, wr) in r.widths.iter().enumerate() {
            let _ = write!(
                json,
                "{{\"lane_block\": {}, \"cov_vps\": {:.0}, \"bare_vps\": {:.0}}}{}",
                wr.w,
                wr.cov_vps,
                wr.bare_vps,
                if j + 1 < r.widths.len() { ", " } else { "" }
            );
        }
        let _ = write!(
            json,
            "], \"best_lane_block\": {}, \"best_cov_speedup\": {:.2}, \"wide_over_w1\": {:.2}, \"worst_over_w1\": {:.2}}}",
            best.w,
            best.cov_vps / r.interpreter_vps,
            best.cov_vps / r.w1_cov_vps(),
            r.worst_cov().cov_vps / r.w1_cov_vps(),
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    print!("{json}");

    for r in &records {
        let best = r.best_cov();
        eprintln!(
            "{}: best W={} cov speedup {:.1}x over interpreter, {:.2}x over W=1",
            r.name,
            best.w,
            best.cov_vps / r.interpreter_vps,
            best.cov_vps / r.w1_cov_vps()
        );
    }
    // Ratcheted per-design floors (coverage-attached, best W), plus
    // the worst-width guard.
    for (design, min_speedup, min_worst_ratio) in FLOORS {
        let r = records
            .iter()
            .find(|r| r.name == design)
            .expect("floor design measured");
        let best = r.best_cov();
        let speedup = best.cov_vps / r.interpreter_vps;
        assert!(
            speedup >= min_speedup,
            "{design}: compiled batch regressed to {speedup:.1}x the interpreter \
             (floor {min_speedup:.1}x)"
        );
        let worst = r.worst_cov();
        let worst_ratio = worst.cov_vps / r.w1_cov_vps();
        assert!(
            worst_ratio >= min_worst_ratio,
            "{design}: lane block W={} fell to {worst_ratio:.2}x the 64-lane backend \
             (floor {min_worst_ratio:.2}x)",
            worst.w,
        );
    }
}
