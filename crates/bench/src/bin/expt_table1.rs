//! Regenerates E4 / Table 1.
fn main() {
    let rows = gm_bench::table1();
    gm_bench::print_table1(&rows);
}
