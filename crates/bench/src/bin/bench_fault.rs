//! CI bench smoke for fault injection: proves the fault points compiled
//! into the verification hot path are free when disarmed and near-free
//! even when a plan is armed but idle.
//!
//! The kernel is a cancellable batched BMC run on `arbiter2` — the same
//! decision dispatch the closure service drives — so every rep crosses
//! the `sat.stall` / `sat.flaky` poll sites once per property decision
//! and once per window start. Two variants run interleaved,
//! min-of-reps:
//!
//! * **fault-free** — no plan armed: the production default, where each
//!   poll site costs one relaxed atomic load;
//! * **armed idle** — a zero-rate plan declaring both SAT points is
//!   armed for the rep: every poll takes the full slow path (registry
//!   lookup, evaluation counting) but never fires, so the work is
//!   byte-identical to the fault-free run.
//!
//! The binary asserts the enforced bound: armed-but-idle wall time must
//! stay within `MAX_IDLE_OVERHEAD` of fault-free, which bounds the
//! *disarmed* production cost a fortiori (disarmed polls skip the slow
//! path entirely; their per-call cost is also measured directly and
//! reported as `disarmed_fire_ns`). Shared CI runners inject transient
//! noise even into min-of-reps floors, so the gate pools rounds into
//! the same per-variant minimums (up to `MAX_ROUNDS`), exactly like
//! `bench_trace`. A falsification check rides along: the armed variant
//! must *count* poll-site evaluations, proving the instrumentation the
//! chaos suite relies on is actually live in this build.
//!
//! Usage: `bench_fault [OUTPUT_PATH]` (default `BENCH_fault.json`).

use gm_fault::FaultPlan;
use gm_mc::{Backend, BitAtom, Checker, WindowProperty};
use std::fmt::Write as _;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Instant;

const BOUND: u32 = 24;
const REPS_PER_ROUND: u32 = 50;
const MAX_ROUNDS: u32 = 10;
const DISARMED_PROBE_CALLS: u64 = 10_000_000;

/// The enforced bound: armed-but-idle wall time must stay within 2% of
/// the fault-free run (ISSUE acceptance; the slow path is one mutex
/// lock per SAT query, so the real gap drowns in solver time).
const MAX_IDLE_OVERHEAD: f64 = 0.02;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fault.json".to_string());
    let module = gm_designs::arbiter2();
    let req0 = module.require("req0").unwrap();
    let gnt0 = module.require("gnt0").unwrap();
    // Four distinct window properties so the batch exercises the full
    // decision dispatch; outcomes are irrelevant as long as both
    // variants do byte-identical work.
    let props: Vec<WindowProperty> = (0..4)
        .map(|i| WindowProperty {
            antecedent: vec![
                BitAtom::new(req0, 0, 0, i % 2 == 0),
                BitAtom::new(req0, 0, 1, false),
            ],
            consequent: BitAtom::new(gnt0, 0, 2, i >= 2),
        })
        .collect();

    // Fresh checker per rep: memoized re-batches would skip the
    // decision dispatch (and its fault polls) entirely. The cancel
    // token stays low; it exists because the fault sites only engage on
    // the cancellable path the closure service uses.
    let cancel = Arc::new(AtomicBool::new(false));
    let run = |cancel: &Arc<AtomicBool>| {
        let mut checker = Checker::new(&module)
            .expect("arbiter2 blasts")
            .with_backend(Backend::Bmc { bound: BOUND })
            .with_cancel(cancel.clone());
        let results = checker
            .check_batch(&props)
            .expect("idle plans never inject a fault");
        std::hint::black_box(results);
    };
    let idle_plan = FaultPlan::new(0)
        .point("sat.stall", 0)
        .point("sat.flaky", 0);
    let mut idle_evals = 0u64;

    // Warm up both variants, then interleave the timed reps so slow
    // drift (thermal, noisy neighbors) hits both equally; pool
    // per-variant minimums across rounds until the gate is satisfied.
    // Arming sits *outside* the timed region — the gate measures what
    // the poll sites cost per query, not the per-test cost of arming.
    run(&cancel);
    {
        let _guard = gm_fault::arm(idle_plan.clone());
        run(&cancel);
    }
    let mut best = [f64::INFINITY; 2];
    let mut rounds = 0;
    while rounds < MAX_ROUNDS {
        rounds += 1;
        for _ in 0..REPS_PER_ROUND {
            let start = Instant::now();
            run(&cancel);
            best[0] = best[0].min(start.elapsed().as_secs_f64());

            let guard = gm_fault::arm(idle_plan.clone());
            let start = Instant::now();
            run(&cancel);
            best[1] = best[1].min(start.elapsed().as_secs_f64());
            idle_evals += guard.report().iter().map(|p| p.evaluated).sum::<u64>();
        }
        let overhead = best[1] / best[0] - 1.0;
        eprintln!(
            "round {rounds}: fault-free {:.3}ms armed-idle {:.3}ms ({:+.2}%)",
            best[0] * 1e3,
            best[1] * 1e3,
            overhead * 100.0
        );
        if overhead <= MAX_IDLE_OVERHEAD {
            break;
        }
    }
    let [fault_free_s, armed_idle_s] = best;
    let reps = u64::from(rounds * REPS_PER_ROUND);
    assert!(
        idle_evals > 0,
        "armed reps must count poll-site evaluations — the chaos suite's \
         falsification gate depends on this instrumentation being live"
    );
    let polls_per_rep = idle_evals / reps;

    // The production state: fault points compiled in, nothing armed.
    // One relaxed load per call; measured directly for the report.
    let start = Instant::now();
    let mut fired = 0u64;
    for _ in 0..DISARMED_PROBE_CALLS {
        fired += u64::from(gm_fault::fire("sat.flaky"));
    }
    let disarmed_fire_ns = start.elapsed().as_secs_f64() * 1e9 / DISARMED_PROBE_CALLS as f64;
    assert_eq!(fired, 0, "disarmed fire must never inject");

    let idle_overhead = armed_idle_s / fault_free_s - 1.0;

    // Hand-rolled JSON: the vendored serde shim is a no-op.
    let mut json = String::from("{\n  \"bench\": \"fault_points\",\n");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"design\": \"arbiter2\", \"backend\": \"bmc\", \
         \"bound\": {BOUND}, \"props\": {}, \"reps\": {reps}}},",
        props.len()
    );
    let _ = writeln!(
        json,
        "  \"fault_free_ms\": {:.4},\n  \"armed_idle_ms\": {:.4},\n  \
         \"fault_polls_per_rep\": {polls_per_rep},\n  \
         \"disarmed_fire_ns\": {disarmed_fire_ns:.2},",
        fault_free_s * 1e3,
        armed_idle_s * 1e3,
    );
    let _ = writeln!(
        json,
        "  \"armed_idle_overhead\": {idle_overhead:.4},\n  \
         \"max_idle_overhead\": {MAX_IDLE_OVERHEAD}\n}}"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_fault.json");
    print!("{json}");
    eprintln!(
        "armed idle: {:+.2}% vs fault-free (bound {:+.0}%); disarmed poll {:.1}ns",
        idle_overhead * 100.0,
        MAX_IDLE_OVERHEAD * 100.0,
        disarmed_fire_ns
    );

    assert!(
        idle_overhead <= MAX_IDLE_OVERHEAD,
        "an armed-but-idle plan costs {:.2}% over the fault-free path (bound {:.0}%)",
        idle_overhead * 100.0,
        MAX_IDLE_OVERHEAD * 100.0,
    );
}
