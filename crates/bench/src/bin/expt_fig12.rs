//! Regenerates E1 / Figure 12.
fn main() {
    let rows = gm_bench::fig12();
    gm_bench::print_fig12(&rows);
}
