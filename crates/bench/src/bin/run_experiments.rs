//! Regenerates every table and figure in sequence (E1–E8), printing each
//! in the layout EXPERIMENTS.md records.
fn main() {
    let rows = gm_bench::fig12();
    gm_bench::print_fig12(&rows);
    println!();
    let series = gm_bench::fig13(32);
    gm_bench::print_fig13(&series);
    println!();
    let series = gm_bench::fig14(32);
    gm_bench::print_fig14(&series);
    println!();
    let rows = gm_bench::table1();
    gm_bench::print_table1(&rows);
    println!();
    let r = gm_bench::fig15("b12_lite", 200);
    gm_bench::print_fig15(&r);
    println!();
    let (total, rows) = gm_bench::table2();
    gm_bench::print_table2(total, &rows);
    println!();
    let rows = gm_bench::fig16(&gm_bench::fig16_cases());
    gm_bench::print_fig16(&rows);
    println!();
    let rows = gm_bench::table3(2000);
    gm_bench::print_table3(&rows);
}
