//! Regenerates E3 / Figure 14.
fn main() {
    let series = gm_bench::fig14(32);
    gm_bench::print_fig14(&series);
}
