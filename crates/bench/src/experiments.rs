//! The eight experiment regenerators (E1–E8).

use crate::workloads;
use gm_coverage::{CoverageReport, CoverageSuite};
use gm_mc::Backend;
use gm_rtl::Module;
use gm_sim::{collect_vectors, RandomStimulus, TestSuite};
use goldmine::{fault_campaign, Engine, EngineConfig, FaultKind, SeedStimulus, TargetSelection};

/// A named design constructor, as the experiment tables enumerate them.
type NamedDesign = (&'static str, fn() -> Module);
/// A named design constructor plus the mining target signal.
type TargetedDesign = (&'static str, &'static str, fn() -> Module);

/// Measures full coverage of a suite on a module.
fn measure(module: &Module, suite: &TestSuite) -> CoverageReport {
    let mut cov = CoverageSuite::new(module);
    suite
        .run(module, &mut cov)
        .expect("bundled designs simulate");
    cov.report()
}

/// Runs a pure random suite of `cycles` cycles and measures coverage.
fn random_coverage(module: &Module, seed: u64, cycles: u64) -> CoverageReport {
    let mut suite = TestSuite::new();
    suite.push(
        "random",
        collect_vectors(&mut RandomStimulus::new(module, seed, cycles)),
    );
    measure(module, &suite)
}

fn one_bit_outputs(module: &Module) -> TargetSelection {
    TargetSelection::Bits(
        module
            .outputs()
            .into_iter()
            .filter(|&s| module.signal_width(s) == 1)
            .map(|s| (s, 0))
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// E1 — Figure 12
// ---------------------------------------------------------------------------

/// One row of the Figure 12 table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig12Row {
    /// Counterexample iteration.
    pub iteration: u32,
    /// The paper's input-space coverage, percent.
    pub input_space: f64,
    /// Expression coverage of the accumulated suite, percent.
    pub expression: f64,
}

/// E1 — Figure 12: arbiter coverage per counterexample iteration,
/// seeded with the paper's directed test.
pub fn fig12() -> Vec<Fig12Row> {
    let module = gm_designs::arbiter2();
    let gnt0 = module.require("gnt0").expect("arbiter2 has gnt0");
    let config = EngineConfig {
        window: 1,
        stimulus: SeedStimulus::Directed(workloads::arbiter2_directed(&module)),
        targets: TargetSelection::Bits(vec![(gnt0, 0)]),
        ..EngineConfig::default()
    };
    let outcome = Engine::new(&module, config)
        .expect("arbiter2 elaborates")
        .run()
        .expect("arbiter2 run succeeds");
    outcome
        .iterations
        .iter()
        .map(|r| Fig12Row {
            iteration: r.iteration,
            input_space: 100.0 * r.input_space_coverage,
            expression: r.coverage.map(|c| c.expression.percent()).unwrap_or(0.0),
        })
        .collect()
}

/// Prints E1 next to the paper's reported values.
pub fn print_fig12(rows: &[Fig12Row]) {
    println!("E1 / Figure 12 — Coverage of Arbiter Design by cex iteration");
    println!(
        "{:<10} {:>16} {:>16}   (paper: 0/50/93.75/100 and 70/80/90/90)",
        "iteration", "input space %", "expression %"
    );
    for r in rows {
        println!(
            "{:<10} {:>16.2} {:>16.2}",
            r.iteration, r.input_space, r.expression
        );
    }
}

// ---------------------------------------------------------------------------
// E2 — Figure 13
// ---------------------------------------------------------------------------

/// One series of Figure 13: a design's input-space coverage by iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig13Series {
    /// Design name.
    pub design: &'static str,
    /// Input-space coverage (percent) per iteration, starting at 0.
    pub coverage: Vec<f64>,
    /// Whether the run converged.
    pub converged: bool,
}

/// E2 — Figure 13: design-space coverage by iteration across the
/// benchmark set, random seeds.
pub fn fig13(seed_cycles: u64) -> Vec<Fig13Series> {
    let cases: [NamedDesign; 5] = [
        ("cex_small", gm_designs::cex_small as fn() -> Module),
        ("arbiter2", gm_designs::arbiter2),
        ("arbiter4", gm_designs::arbiter4),
        ("wb_stage", gm_designs::wb_stage),
        ("fetch_stage", gm_designs::fetch_stage),
    ];
    cases
        .iter()
        .map(|(name, build)| {
            let module = build();
            let info = gm_designs::by_name(name).expect("design in catalog");
            let targets = match *name {
                "fetch_stage" => TargetSelection::Bits(vec![(
                    module.require("valid").expect("fetch has valid"),
                    0,
                )]),
                "wb_stage" => TargetSelection::Bits(vec![
                    (module.require("wb_valid").expect("wb has wb_valid"), 0),
                    (module.require("wb_we").expect("wb has wb_we"), 0),
                ]),
                _ => TargetSelection::AllOutputs,
            };
            let config = EngineConfig {
                window: info.window,
                stimulus: SeedStimulus::Random {
                    cycles: seed_cycles,
                },
                targets,
                record_coverage: false,
                ..EngineConfig::default()
            };
            let outcome = Engine::new(&module, config)
                .expect("design elaborates")
                .run()
                .expect("run succeeds");
            Fig13Series {
                design: name,
                coverage: outcome
                    .iterations
                    .iter()
                    .map(|r| 100.0 * r.input_space_coverage)
                    .collect(),
                converged: outcome.converged,
            }
        })
        .collect()
}

/// Prints E2 as an iteration-by-design matrix.
pub fn print_fig13(series: &[Fig13Series]) {
    println!("E2 / Figure 13 — design space coverage (%) by iteration");
    let max_iters = series.iter().map(|s| s.coverage.len()).max().unwrap_or(0);
    print!("{:<12}", "iteration");
    for s in series {
        print!(" {:>12}", s.design);
    }
    println!();
    for i in 0..max_iters {
        print!("{:<12}", i);
        for s in series {
            match s.coverage.get(i) {
                // Carry the final value forward once a design converges.
                Some(v) => print!(" {:>12.2}", v),
                None => print!(" {:>12.2}", s.coverage.last().copied().unwrap_or(0.0)),
            }
        }
        println!();
    }
    for s in series {
        if !s.converged {
            println!("note: {} did not fully converge", s.design);
        }
    }
}

// ---------------------------------------------------------------------------
// E3 — Figure 14
// ---------------------------------------------------------------------------

/// One series of Figure 14: expression coverage by iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig14Series {
    /// Design name.
    pub design: &'static str,
    /// Expression coverage (percent) per iteration.
    pub expression: Vec<f64>,
}

/// E3 — Figure 14: expression coverage increase by iteration for the
/// paper's three simple blocks, seeded with weak directed tests (as the
/// paper's §7.1 directed-test group does; random seeds of any size start
/// the metric near 100%).
pub fn fig14(_seed_cycles: u64) -> Vec<Fig14Series> {
    let cases: [NamedDesign; 3] = [
        ("cex_small", gm_designs::cex_small as fn() -> Module),
        ("arbiter2", gm_designs::arbiter2),
        ("arbiter4", gm_designs::arbiter4),
    ];
    cases
        .iter()
        .map(|(name, build)| {
            let module = build();
            let info = gm_designs::by_name(name).expect("design in catalog");
            let directed = match *name {
                "cex_small" => workloads::cex_small_directed(&module),
                "arbiter2" => workloads::arbiter2_directed(&module),
                "arbiter4" => workloads::arbiter4_directed(&module),
                _ => unreachable!(),
            };
            let config = EngineConfig {
                window: info.window,
                stimulus: SeedStimulus::Directed(directed),
                ..EngineConfig::default()
            };
            let outcome = Engine::new(&module, config)
                .expect("design elaborates")
                .run()
                .expect("run succeeds");
            Fig14Series {
                design: name,
                expression: outcome
                    .iterations
                    .iter()
                    .map(|r| r.coverage.map(|c| c.expression.percent()).unwrap_or(0.0))
                    .collect(),
            }
        })
        .collect()
}

/// Prints E3 next to the paper's reported values.
pub fn print_fig14(series: &[Fig14Series]) {
    println!("E3 / Figure 14 — expression coverage (%) by iteration");
    println!("(paper: cex_small 66.67->83.33, arbiter2 70->90, arbiter4 39->88)");
    let max_iters = series.iter().map(|s| s.expression.len()).max().unwrap_or(0);
    print!("{:<12}", "iteration");
    for s in series {
        print!(" {:>12}", s.design);
    }
    println!();
    for i in 0..max_iters {
        print!("{:<12}", i);
        for s in series {
            let v = s
                .expression
                .get(i)
                .copied()
                .unwrap_or_else(|| s.expression.last().copied().unwrap_or(0.0));
            print!(" {:>12.2}", v);
        }
        println!();
    }
}

// ---------------------------------------------------------------------------
// E4 — Table 1
// ---------------------------------------------------------------------------

/// The iteration checkpoints the paper's Table 1 reports.
pub const TABLE1_CHECKPOINTS: [u32; 7] = [0, 1, 2, 5, 12, 15, 17];

/// One row of Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct Table1Row {
    /// `design.output` label.
    pub target: String,
    /// Input-space coverage (percent) at each checkpoint iteration.
    pub at_checkpoints: Vec<f64>,
    /// Iterations actually used until convergence.
    pub converged_at: Option<u32>,
}

/// E4 — Table 1: the zero-initial-patterns limit study.
pub fn table1() -> Vec<Table1Row> {
    let cases: [TargetedDesign; 3] = [
        ("arbiter2", "gnt0", gm_designs::arbiter2 as fn() -> Module),
        ("arbiter4", "gnt0", gm_designs::arbiter4),
        ("fetch_stage", "valid", gm_designs::fetch_stage),
    ];
    cases
        .iter()
        .map(|(design, output, build)| {
            let module = build();
            let info = gm_designs::by_name(design).expect("design in catalog");
            let out = module.require(output).expect("output exists");
            let config = EngineConfig {
                window: info.window,
                stimulus: SeedStimulus::None,
                targets: TargetSelection::Bits(vec![(out, 0)]),
                record_coverage: false,
                max_iterations: 64,
                ..EngineConfig::default()
            };
            let outcome = Engine::new(&module, config)
                .expect("design elaborates")
                .run()
                .expect("run succeeds");
            let series: Vec<f64> = outcome
                .iterations
                .iter()
                .map(|r| 100.0 * r.input_space_coverage)
                .collect();
            let at_checkpoints = TABLE1_CHECKPOINTS
                .iter()
                .map(|&cp| {
                    series
                        .get(cp as usize)
                        .copied()
                        .unwrap_or_else(|| series.last().copied().unwrap_or(0.0))
                })
                .collect();
            let converged_at = outcome.converged.then(|| outcome.iteration_count());
            Table1Row {
                target: format!("{design}.{output}"),
                at_checkpoints,
                converged_at,
            }
        })
        .collect()
}

/// Prints E4 next to the paper's reported values.
pub fn print_table1(rows: &[Table1Row]) {
    println!("E4 / Table 1 — coverage % by iteration, zero initial patterns");
    print!("{:<20}", "target");
    for cp in TABLE1_CHECKPOINTS {
        print!(" {:>8}", format!("it{cp}"));
    }
    println!("  (paper rows reach 100 by it5/it17/it5)");
    for r in rows {
        print!("{:<20}", r.target);
        for v in &r.at_checkpoints {
            print!(" {:>8.2}", v);
        }
        match r.converged_at {
            Some(n) => println!("  converged at {n}"),
            None => println!("  not converged"),
        }
    }
}

// ---------------------------------------------------------------------------
// E5 — Figure 15
// ---------------------------------------------------------------------------

/// The two rows of Figure 15.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig15Result {
    /// Design used.
    pub design: String,
    /// Coverage after the 50-cycle random test.
    pub random_only: CoverageReport,
    /// Coverage after adding the GoldMine-generated patterns.
    pub with_goldmine: CoverageReport,
}

/// E5 — Figure 15: taking an already-high-coverage block higher. The
/// paper uses a block at 100% line/branch and 93% condition coverage;
/// `b12_lite` shows the same profile here: random stimulus plateaus
/// (97.7/92.9/80.0 regardless of cycle count) and the counterexample
/// patterns lift every metric.
pub fn fig15(design: &str, random_cycles: u64) -> Fig15Result {
    let info = gm_designs::by_name(design).expect("design in catalog");
    let module = info.module();
    let random_vectors = collect_vectors(&mut RandomStimulus::new(&module, 11, random_cycles));

    let mut random_suite = TestSuite::new();
    random_suite.push("random", random_vectors.clone());
    let random_only = measure(&module, &random_suite);

    // GoldMine patterns on top of the same random seed.
    let config = EngineConfig {
        window: info.window,
        stimulus: SeedStimulus::Directed(random_vectors),
        record_coverage: false,
        targets: one_bit_outputs(&module),
        ..EngineConfig::default()
    };
    let outcome = Engine::new(&module, config)
        .expect("design elaborates")
        .run()
        .expect("run succeeds");
    let with_goldmine = measure(&module, &outcome.suite);
    Fig15Result {
        design: design.to_string(),
        random_only,
        with_goldmine,
    }
}

/// Prints E5 next to the paper's reported values.
pub fn print_fig15(r: &Fig15Result) {
    println!(
        "E5 / Figure 15 — lifting a high-coverage block ({})",
        r.design
    );
    println!("(paper: 100/100/93.02 -> 100/100/95.35)");
    println!(
        "{:<28} {:>8} {:>8} {:>8} {:>8}",
        "test", "line", "branch", "cond", "expr"
    );
    for (label, c) in [
        ("random cycles", &r.random_only),
        ("random + GoldMine", &r.with_goldmine),
    ] {
        println!(
            "{:<28} {:>7.2}% {:>7.2}% {:>7.2}% {:>7.2}%",
            label,
            c.line.percent(),
            c.branch.percent(),
            c.condition.percent(),
            c.expression.percent()
        );
    }
}

// ---------------------------------------------------------------------------
// E6 — Table 2
// ---------------------------------------------------------------------------

/// One row of Table 2.
#[derive(Clone, Debug, PartialEq)]
pub struct Table2Row {
    /// Faulted signal name.
    pub signal: String,
    /// Assertions failing under stuck-at-0.
    pub stuck_at_0: usize,
    /// Assertions failing under stuck-at-1.
    pub stuck_at_1: usize,
}

/// E6 — Table 2: stuck-at faults covered by previously mined assertions
/// on the Rigel-like fetch stage (the paper's signal list).
pub fn table2() -> (usize, Vec<Table2Row>) {
    let module = gm_designs::fetch_stage();
    // Mine all outputs (valid and pc) so datapath faults are observable.
    let config = EngineConfig {
        window: 1,
        stimulus: SeedStimulus::Random { cycles: 128 },
        record_coverage: false,
        max_iterations: 48,
        ..EngineConfig::default()
    };
    let outcome = Engine::new(&module, config)
        .expect("fetch elaborates")
        .run()
        .expect("run succeeds");
    let signals = [
        "stall_in",
        "branch_pc",
        "branch_mispredict",
        "icache_rdvl_i",
    ];
    let ids: Vec<_> = signals
        .iter()
        .map(|n| module.require(n).expect("paper signal exists"))
        .collect();
    let reports = fault_campaign(&module, &outcome.assertions, &ids).expect("mutants elaborate");
    let rows = reports
        .chunks(2)
        .map(|pair| Table2Row {
            signal: module.signal(pair[0].signal).name().to_string(),
            stuck_at_0: pair
                .iter()
                .find(|r| r.fault == FaultKind::StuckAt0)
                .map_or(0, |r| r.detecting.len()),
            stuck_at_1: pair
                .iter()
                .find(|r| r.fault == FaultKind::StuckAt1)
                .map_or(0, |r| r.detecting.len()),
        })
        .collect();
    (outcome.assertions.len(), rows)
}

/// Prints E6 next to the paper's reported values.
pub fn print_table2(total: usize, rows: &[Table2Row]) {
    println!("E6 / Table 2 — faults covered by {total} mined assertions");
    println!("(paper: every fault detected; counts 1..269)");
    println!("{:<20} {:>12} {:>12}", "signal", "stuck-at-0", "stuck-at-1");
    for r in rows {
        println!("{:<20} {:>12} {:>12}", r.signal, r.stuck_at_0, r.stuck_at_1);
    }
}

// ---------------------------------------------------------------------------
// E7 — Figure 16
// ---------------------------------------------------------------------------

/// One design row of Figure 16 (random and GoldMine sub-rows).
#[derive(Clone, Debug, PartialEq)]
pub struct Fig16Row {
    /// Design name.
    pub design: &'static str,
    /// Random simulation cycles used.
    pub cycles: u64,
    /// Coverage of the random run.
    pub random: CoverageReport,
    /// Coverage of the GoldMine suite.
    pub goldmine: CoverageReport,
    /// Cycles in the GoldMine suite.
    pub goldmine_cycles: usize,
}

/// The (design, random-cycle) pairs for Figure 16; cycle counts are the
/// paper's scaled to our lite designs.
pub fn fig16_cases() -> Vec<(&'static str, u64)> {
    vec![
        ("b01", 85),
        ("b02", 50),
        ("b09", 2000),
        ("b12_lite", 1200),
        ("b17_lite", 2000),
        ("b18_lite", 1000),
    ]
}

/// E7 — Figure 16: random tests vs GoldMine tests on the ITC-style
/// designs.
pub fn fig16(cases: &[(&'static str, u64)]) -> Vec<Fig16Row> {
    cases
        .iter()
        .map(|&(name, cycles)| {
            let info = gm_designs::by_name(name).expect("design in catalog");
            let module = info.module();
            let random = random_coverage(&module, 21, cycles);
            // The big lite blocks exceed the explicit window budget, so
            // force the SAT backend there and accept bounded verdicts.
            let backend = match name {
                "b17_lite" | "b18_lite" => Backend::KInduction { max_k: 6 },
                _ => Backend::Auto,
            };
            let config = EngineConfig {
                window: info.window,
                stimulus: SeedStimulus::Random { cycles: 64 },
                record_coverage: false,
                targets: one_bit_outputs(&module),
                backend,
                max_iterations: 24,
                ..EngineConfig::default()
            };
            let outcome = Engine::new(&module, config)
                .expect("design elaborates")
                .run()
                .expect("run succeeds");
            let goldmine = measure(&module, &outcome.suite);
            Fig16Row {
                design: name,
                cycles,
                random,
                goldmine,
                goldmine_cycles: outcome.suite.total_cycles(),
            }
        })
        .collect()
}

/// Prints E7 in the paper's row layout.
pub fn print_fig16(rows: &[Fig16Row]) {
    println!("E7 / Figure 16 — random vs GoldMine tests on ITC-style designs");
    println!(
        "{:<10} {:>7} {:<9} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "module", "cycles", "suite", "line", "cond", "toggle", "fsm", "branch"
    );
    for r in rows {
        for (label, c, cyc) in [
            ("random", &r.random, r.cycles as usize),
            ("goldmine", &r.goldmine, r.goldmine_cycles),
        ] {
            println!(
                "{:<10} {:>7} {:<9} {:>6.1}% {:>6.1}% {:>6.1}% {:>7} {:>6.1}%",
                if label == "random" { r.design } else { "" },
                cyc,
                label,
                c.line.percent(),
                c.condition.percent(),
                c.toggle.percent(),
                c.fsm
                    .map(|f| format!("{:.1}%", f.percent()))
                    .unwrap_or_else(|| "n/a".into()),
                c.branch.percent()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// E8 — Table 3
// ---------------------------------------------------------------------------

/// One module row of Table 3.
#[derive(Clone, Debug, PartialEq)]
pub struct Table3Row {
    /// Module name.
    pub module: &'static str,
    /// Directed-test cycles.
    pub directed_cycles: usize,
    /// Coverage of the directed test.
    pub directed: CoverageReport,
    /// GoldMine suite cycles.
    pub goldmine_cycles: usize,
    /// Coverage of the GoldMine suite.
    pub goldmine: CoverageReport,
}

/// E8 — Table 3: directed tests vs GoldMine tests on the Rigel-like
/// pipeline stages.
pub fn table3(directed_cycles: usize) -> Vec<Table3Row> {
    let cases: [NamedDesign; 3] = [
        ("wb_stage", gm_designs::wb_stage as fn() -> Module),
        ("fetch_stage", gm_designs::fetch_stage),
        ("decode_stage", gm_designs::decode_stage),
    ];
    cases
        .iter()
        .map(|(name, build)| {
            let module = build();
            let info = gm_designs::by_name(name).expect("design in catalog");
            let mut directed_suite = TestSuite::new();
            directed_suite.push(
                "directed",
                workloads::rigel_directed(&module, directed_cycles),
            );
            let directed = measure(&module, &directed_suite);

            let config = EngineConfig {
                window: info.window,
                stimulus: SeedStimulus::Random { cycles: 64 },
                record_coverage: false,
                max_iterations: 48,
                ..EngineConfig::default()
            };
            let outcome = Engine::new(&module, config)
                .expect("design elaborates")
                .run()
                .expect("run succeeds");
            let goldmine = measure(&module, &outcome.suite);
            Table3Row {
                module: name,
                directed_cycles,
                directed,
                goldmine_cycles: outcome.suite.total_cycles(),
                goldmine,
            }
        })
        .collect()
}

/// Prints E8 in the paper's row layout.
pub fn print_table3(rows: &[Table3Row]) {
    println!("E8 / Table 3 — directed vs GoldMine tests on Rigel-like stages");
    println!(
        "{:<14} {:<9} {:>8} {:>7} {:>7} {:>7} {:>7}",
        "module", "test", "cycles", "line", "cond", "toggle", "branch"
    );
    for r in rows {
        for (label, c, cyc) in [
            ("directed", &r.directed, r.directed_cycles),
            ("goldmine", &r.goldmine, r.goldmine_cycles),
        ] {
            println!(
                "{:<14} {:<9} {:>8} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
                if label == "directed" { r.module } else { "" },
                label,
                cyc,
                c.line.percent(),
                c.condition.percent(),
                c.toggle.percent(),
                c.branch.percent()
            );
        }
    }
}
