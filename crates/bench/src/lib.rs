//! # gm-bench — experiment harness for the paper's tables and figures
//!
//! One regenerator per evaluation artifact of the paper (IDs follow
//! DESIGN.md's per-experiment index):
//!
//! | ID | Paper artifact | Function | Binary |
//! |----|----------------|----------|--------|
//! | E1 | Fig. 12 — arbiter coverage by iteration | [`fig12`] | `expt_fig12` |
//! | E2 | Fig. 13 — design-space coverage by iteration | [`fig13`] | `expt_fig13` |
//! | E3 | Fig. 14 — expression coverage by iteration | [`fig14`] | `expt_fig14` |
//! | E4 | Table 1 — zero initial patterns | [`table1`] | `expt_table1` |
//! | E5 | Fig. 15 — lifting a high-coverage block | [`fig15`] | `expt_fig15` |
//! | E6 | Table 2 — faults covered by assertions | [`table2`] | `expt_table2` |
//! | E7 | Fig. 16 — random vs GoldMine on ITC blocks | [`fig16`] | `expt_fig16` |
//! | E8 | Table 3 — directed vs GoldMine on Rigel stages | [`table3`] | `expt_table3` |
//!
//! Every function returns structured rows (so tests can assert on the
//! shapes the paper claims) and has a `print_*` companion used by the
//! binaries and by `cargo bench`.

pub mod experiments;
pub mod load;
pub mod workloads;

pub use experiments::*;
