//! Quickstart: mine proved assertions and coverage-closing stimulus for
//! a small design in a dozen lines.
//!
//! Run with: `cargo run --example quickstart`

use goldmine::{Engine, EngineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Any synthesizable-subset Verilog works; see gm-designs for more.
    let module = gm_rtl::parse_verilog(
        "module majority(input a, input b, input c, output y);
           assign y = (a & b) | (b & c) | (a & c);
         endmodule",
    )?;

    let config = EngineConfig {
        window: 0, // combinational design: single-cycle window
        ..EngineConfig::default()
    };
    let outcome = Engine::new(&module, config)?.run()?;

    let verif = outcome.verification_total();
    println!("design      : {}", module.name());
    println!("converged   : {}", outcome.converged);
    println!("iterations  : {}", outcome.iteration_count());
    println!("suite cycles: {}", outcome.suite.total_cycles());
    println!(
        "verification: {} queries ({} explicit, {} SAT), {} memo hits",
        verif.engine_queries(),
        verif.explicit_queries,
        verif.sat_decided,
        verif.memo_hits
    );
    println!();
    println!("proved assertions (LTL):");
    for a in &outcome.assertions {
        println!("  {}", a.to_ltl(&module));
    }
    println!();
    println!("proved assertions (SVA):");
    for a in &outcome.assertions {
        println!("  {}", a.to_sva(&module));
    }
    if let Some(cov) = outcome.final_coverage() {
        println!();
        println!("final stimulus coverage: {cov}");
    }
    Ok(())
}
