//! Mutation-based regression (the paper's §7.4 / Table 2): mine
//! assertions on the Rigel-like fetch stage, then inject stuck-at faults
//! on the paper's signals and count how many assertions catch each one.
//!
//! Run with: `cargo run --release --example fault_regression`

use goldmine::{fault_campaign, Engine, EngineConfig, TargetSelection};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = gm_designs::fetch_stage();
    let valid = module.require("valid")?;

    println!("mining assertions for fetch_stage.valid ...");
    let config = EngineConfig {
        window: 1,
        targets: TargetSelection::Bits(vec![(valid, 0)]),
        record_coverage: false,
        ..EngineConfig::default()
    };
    let outcome = Engine::new(&module, config)?.run()?;
    println!(
        "mined {} proved assertions in {} iterations (converged: {})",
        outcome.assertions.len(),
        outcome.iteration_count(),
        outcome.converged
    );
    for a in outcome.assertions.iter().take(8) {
        println!("  {}", a.to_ltl(&module));
    }
    if outcome.assertions.len() > 8 {
        println!("  ... and {} more", outcome.assertions.len() - 8);
    }

    // The paper's Table 2 signals.
    let signals = [
        "stall_in",
        "branch_pc",
        "branch_mispredict",
        "icache_rdvl_i",
    ];
    let sig_ids: Vec<_> = signals
        .iter()
        .map(|n| module.require(n))
        .collect::<Result<_, _>>()?;

    println!();
    println!("== faults covered by assertions (paper Table 2 shape) ==");
    println!("{:<20} {:>12} {:>12}", "signal", "stuck-at-0", "stuck-at-1");
    let reports = fault_campaign(&module, &outcome.assertions, &sig_ids)?;
    for pair in reports.chunks(2) {
        let name = module.signal(pair[0].signal).name();
        println!(
            "{:<20} {:>12} {:>12}",
            name,
            pair[0].detecting.len(),
            pair[1].detecting.len()
        );
    }
    let undetected = reports.iter().filter(|r| !r.is_detected()).count();
    println!();
    println!(
        "{} / {} faults detected by the assertion suite",
        reports.len() - undetected,
        reports.len()
    );
    Ok(())
}
