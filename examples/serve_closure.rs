//! Drive the persistent closure service over its Unix-socket protocol
//! with several concurrent clients.
//!
//! Two modes:
//!
//! * `GM_SERVE_SOCKET=/path/to.sock cargo run --example serve_closure`
//!   — connect to an already-running `gmserved` (this is what the CI
//!   smoke test does: launch the daemon, run this client, assert a
//!   clean shutdown);
//! * `cargo run --example serve_closure` — no socket given: spawn the
//!   service in-process on a temporary socket first, then run the same
//!   scenario against it.
//!
//! Three clients submit the small catalog designs concurrently (with
//! deliberate repeats, so the content-addressed cache gets hits), poll
//! per-iteration progress, and print the merged results plus the
//! server's scheduler/cache counters.
//!
//! Afterwards one job is re-submitted with the flight recorder on and
//! its Chrome trace is fetched over the wire; set `GM_SERVE_TRACE_OUT`
//! to a path to save it (load the file in Perfetto / `chrome://tracing`
//! to see the queue/engine/solver span tree).

use gm_serve::{ClosureService, ServeClient, ServeConfig, WireConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const DESIGNS: [&str; 5] = ["cex_small", "arbiter2", "b01", "b02", "b09"];

fn wire_config(design: &gm_designs::DesignInfo) -> WireConfig {
    let module = design.module();
    let targets: Vec<(String, u32)> = module
        .outputs()
        .into_iter()
        .filter(|&s| module.signal_width(s) == 1)
        .map(|s| (module.signal(s).name().to_string(), 0))
        .collect();
    WireConfig {
        window: design.window,
        random_cycles: Some(32),
        max_iterations: 12,
        record_coverage: false,
        ..WireConfig::default()
    }
    .with_bit_targets(targets)
}

fn client_scenario(path: &Path, client: usize) -> std::io::Result<Vec<String>> {
    let mut conn = ServeClient::connect(path)?;
    let mut lines = Vec::new();
    // Each client walks the design list from its own offset, so the
    // same designs arrive from different clients at different times.
    for step in 0..DESIGNS.len() {
        let name = DESIGNS[(client + step) % DESIGNS.len()];
        let design = gm_designs::by_name(name).expect("catalog design");
        let (job, cached) = conn.submit(name, design.source, &wire_config(&design))?;
        // Stream progress until the job goes terminal, then collect the
        // summary.
        let mut seen = 0u64;
        loop {
            let (events, terminal) = conn.progress(job, seen)?;
            seen += events.len() as u64;
            if terminal {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let summary = conn.wait(job)?;
        lines.push(format!(
            "client {client} {name:<10} job {job:<3} cached={cached:<5} converged={:<5} iterations={:<2} proved={:<3} cycles={}",
            summary.converged,
            summary.iterations,
            summary.assertions.len(),
            summary.suite_cycles,
        ));
    }
    Ok(lines)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (path, local_server) = match std::env::var("GM_SERVE_SOCKET") {
        Ok(p) => (PathBuf::from(p), None),
        Err(_) => {
            let path =
                std::env::temp_dir().join(format!("gm-serve-example-{}.sock", std::process::id()));
            let listener = gm_serve::bind_unix(&path)?;
            let service = Arc::new(ClosureService::new(ServeConfig {
                workers: 3,
                ..ServeConfig::default()
            }));
            println!(
                "no GM_SERVE_SOCKET: serving in-process on {}",
                path.display()
            );
            let handle = std::thread::spawn(move || gm_serve::serve_unix(service, listener));
            (path, Some(handle))
        }
    };

    // Counters are daemon-lifetime: snapshot them first so the checks
    // below hold against an external server with prior traffic too.
    let baseline = ServeClient::connect(&path)?.stats()?;

    let results: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|client| {
                let path = &path;
                scope.spawn(move || client_scenario(path, client))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect::<Result<_, _>>()
    })?;
    for lines in results {
        for line in lines {
            println!("{line}");
        }
    }

    let mut conn = ServeClient::connect(&path)?;

    // One traced job: the recorder rides along only for submissions
    // that ask for it, and the trace is served once the job is
    // terminal.
    let design = gm_designs::by_name("arbiter2").expect("catalog design");
    let (traced_job, _) = conn.submit_traced(
        "arbiter2-traced",
        design.source,
        &wire_config(&design),
        true,
    )?;
    conn.wait(traced_job)?;
    let trace = conn.trace(traced_job)?;
    let spans = trace.matches("\"ph\":\"X\"").count();
    match std::env::var_os("GM_SERVE_TRACE_OUT") {
        Some(out) => {
            std::fs::write(&out, &trace)?;
            println!(
                "\ntraced job {traced_job}: {spans} spans, {} bytes -> {}",
                trace.len(),
                Path::new(&out).display()
            );
        }
        None => println!(
            "\ntraced job {traced_job}: {spans} spans, {} bytes (set GM_SERVE_TRACE_OUT to save)",
            trace.len()
        ),
    }

    let stats = conn.stats()?;
    println!(
        "\nserver: {} submitted, {} completed on {} workers ({} steals); cache {} hits / {} misses / {} evictions ({} KiB resident)",
        stats.submitted,
        stats.completed,
        stats.workers,
        stats.steals,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.cache_bytes / 1024,
    );
    // The three scenario clients plus the traced re-submission.
    assert_eq!(
        stats.completed - baseline.completed,
        (DESIGNS.len() * 3 + 1) as u64
    );
    assert!(
        stats.cache_hits - baseline.cache_hits >= (DESIGNS.len() * 2) as u64,
        "repeats must hit the cache"
    );
    // In-process servers always get shut down; an external `gmserved`
    // only when the caller asks (the CI smoke test sets this to assert
    // the daemon's clean-shutdown path).
    if local_server.is_some() || std::env::var_os("GM_SERVE_SHUTDOWN").is_some() {
        conn.shutdown()?;
        println!("sent shutdown");
    } else {
        println!("leaving the external server running (set GM_SERVE_SHUTDOWN=1 to stop it)");
    }
    // The accept loop joins connection threads before returning: hang
    // up before waiting on it.
    drop(conn);
    if let Some(handle) = local_server {
        handle.join().expect("server thread")?;
        let _ = std::fs::remove_file(&path);
    }
    println!("done");
    Ok(())
}
