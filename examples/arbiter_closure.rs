//! The paper's §6 walkthrough: counterexample-guided refinement on the
//! two-port arbiter, starting from a small directed test.
//!
//! Prints the per-iteration progress table (the shape of the paper's
//! Figure 12) and the final proved assertion set — compare with the
//! paper's A2/A3/A6–A9/A11/A12.
//!
//! Run with: `cargo run --example arbiter_closure`

use gm_sim::DirectedStimulus;
use goldmine::{Engine, EngineConfig, SeedStimulus, TargetSelection};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = gm_designs::arbiter2();
    let gnt0 = module.require("gnt0")?;

    // A directed test a validation engineer might write (paper Fig. 7).
    let directed = DirectedStimulus::from_named(
        &module,
        &[
            &[("req0", 0), ("req1", 0)],
            &[("req0", 1), ("req1", 0)],
            &[("req0", 1), ("req1", 1)],
            &[("req0", 0), ("req1", 1)],
            &[("req0", 1), ("req1", 1)],
        ],
    )?;

    let config = EngineConfig {
        window: 1,
        stimulus: SeedStimulus::Directed(directed.vectors().to_vec()),
        targets: TargetSelection::Bits(vec![(gnt0, 0)]),
        ..EngineConfig::default()
    };
    let outcome = Engine::new(&module, config)?.run()?;

    println!("== counterexample iterations (paper Fig. 12 shape) ==");
    println!(
        "{:<10} {:>11} {:>8} {:>8} {:>14} {:>12} {:>8} {:>6}",
        "iteration",
        "candidates",
        "proved",
        "refuted",
        "input-space %",
        "expr cov %",
        "queries",
        "memo"
    );
    for r in &outcome.iterations {
        let expr = r
            .coverage
            .map(|c| format!("{:.1}", c.expression.percent()))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<10} {:>11} {:>8} {:>8} {:>14.2} {:>12} {:>8} {:>6}",
            r.iteration,
            r.candidates,
            r.proved_total,
            r.refuted,
            100.0 * r.input_space_coverage,
            expr,
            r.verification.engine_queries(),
            r.verification.memo_hits
        );
    }
    let verif = outcome.verification_total();
    println!();
    println!(
        "session totals: {} queries ({} explicit, {} SAT / {} solver calls), {} memo hits, \
         {} unrollers, {} frames encoded / {} reused, {} conflicts",
        verif.engine_queries(),
        verif.explicit_queries,
        verif.sat_decided,
        verif.sat_queries,
        verif.memo_hits,
        verif.unrollers_built,
        verif.frames_encoded,
        verif.frames_reused,
        verif.solver.conflicts
    );

    println!();
    println!("== final decision tree ==");
    for t in &outcome.targets {
        println!(
            "target {}[{}]: converged={} nodes={} proved={} state-extended={}",
            module.signal(t.signal).name(),
            t.bit,
            t.converged,
            t.tree_nodes,
            t.proved,
            t.extended
        );
    }

    println!();
    println!("== proved assertions ==");
    for a in &outcome.assertions {
        println!("  {}", a.to_ltl(&module));
    }

    println!();
    println!("== accumulated validation stimulus ==");
    for seg in outcome.suite.segments() {
        println!("  segment {:<10} {} cycles", seg.label, seg.vectors.len());
    }
    println!(
        "coverage closure: {} (input space {:.1}%)",
        outcome.converged,
        100.0 * outcome.final_input_space_coverage()
    );
    Ok(())
}
