//! Random vs GoldMine-generated stimulus on an ITC'99-style block
//! (one row of the paper's Figure 16).
//!
//! Runs a long random test and the engine's counterexample-derived
//! suite through the same coverage instrumentation and prints both rows.
//!
//! Run with: `cargo run --release --example coverage_compare [design] [cycles]`

use gm_coverage::CoverageSuite;
use gm_sim::{collect_vectors, RandomStimulus, TestSuite};
use goldmine::{Engine, EngineConfig, SeedStimulus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "b01".to_string());
    let cycles: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let design = gm_designs::by_name(&name)
        .ok_or_else(|| format!("unknown design `{name}` (see gm_designs::catalog())"))?;
    let module = design.module();

    // Row 1: pure random simulation.
    let mut random_suite = TestSuite::new();
    random_suite.push(
        "random",
        collect_vectors(&mut RandomStimulus::new(&module, 7, cycles)),
    );
    let mut cov = CoverageSuite::new(&module);
    random_suite.run(&module, &mut cov)?;
    let random_report = cov.report();

    // Row 2: the GoldMine refinement suite (random seed + cex segments).
    let config = EngineConfig {
        window: design.window,
        stimulus: SeedStimulus::Random { cycles: 64 },
        record_coverage: false,
        max_iterations: 32,
        ..EngineConfig::default()
    };
    let outcome = Engine::new(&module, config)?.run()?;
    let mut cov = CoverageSuite::new(&module);
    outcome.suite.run(&module, &mut cov)?;
    let gm_report = cov.report();

    println!("design {name}: random {cycles} cycles vs GoldMine suite ({} cycles, {} iterations, converged={})",
        outcome.suite.total_cycles(), outcome.iteration_count(), outcome.converged);
    println!();
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "stimulus", "line", "cond", "toggle", "fsm", "branch"
    );
    for (label, r) in [("random", random_report), ("goldmine", gm_report)] {
        println!(
            "{:<10} {:>7.1}% {:>7.1}% {:>7.1}% {:>8} {:>7.1}%",
            label,
            r.line.percent(),
            r.condition.percent(),
            r.toggle.percent(),
            r.fsm
                .map(|f| format!("{:.1}%", f.percent()))
                .unwrap_or_else(|| "n/a".into()),
            r.branch.percent()
        );
    }
    println!();
    println!(
        "goldmine proved {} assertions; e.g.:",
        outcome.assertions.len()
    );
    for a in outcome.assertions.iter().take(5) {
        println!("  {}", a.to_ltl(&module));
    }
    Ok(())
}
