//! AIGER interop demo: export a bit-blasted catalog design to ASCII
//! AIGER, re-import it, and show the round trip is lossless — the flow
//! an external model checker (ABC, nuXmv, ...) would sit in the middle
//! of.
//!
//! ```sh
//! cargo run --example aiger_interop
//! ```

use gm_mc::{blast, parse_aiger, to_aiger};
use gm_rtl::elaborate;

fn main() {
    let module = gm_designs::by_name("arbiter2").unwrap().module();
    let elab = elaborate(&module).unwrap();
    let blasted = blast(&module, &elab).unwrap();

    let text = gm_mc::blasted_to_aiger(&module, &blasted);
    println!("== exported AIGER ({} bytes) ==", text.len());
    for line in text.lines().take(8) {
        println!("{line}");
    }
    println!("...\n");

    let parsed = parse_aiger(&text).expect("own export must re-import");
    println!(
        "re-imported: {} nodes, {} inputs, {} latches, structurally equal: {}",
        parsed.aig.len(),
        parsed.aig.input_count(),
        parsed.aig.latch_count(),
        parsed.aig.structurally_equal(&blasted.aig),
    );
    let text2 = to_aiger(&parsed.aig, &parsed.outputs);
    println!(
        "print . parse . print fixed point: {}",
        text2 == to_aiger(&blasted.aig, &parsed.outputs)
    );

    // Malformed input is rejected with a message, never a panic.
    for bad in [
        "aag 1 1 0 0 1\n2\n4 2 3\n",           // undercounted M
        "aag 3 1 0 1 2\n2\n6\n4 6 2\n6 3 2\n", // forward reference
        "aag 9999999999 0 0 0 0\n",            // hostile allocation
    ] {
        let err = parse_aiger(bad).unwrap_err();
        println!("rejected: {err}");
    }
}
