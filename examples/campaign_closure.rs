//! Close coverage on the whole benchmark catalog concurrently: a
//! [`goldmine::Campaign`] runs one closure engine per design on a
//! per-core worker pool, while each engine shards its own verification
//! worklist ([`goldmine::ShardPolicy::PerCore`]) — the two levels of
//! parallelism this reproduction layers on the paper's Figure 3 loop.
//!
//! Run with: `cargo run --release --example campaign_closure`

use gm_mc::Backend;
use gm_rtl::SignalId;
use goldmine::{Campaign, EngineConfig, SeedStimulus, ShardPolicy, TargetSelection, UnknownPolicy};

fn one_bit_targets(m: &gm_rtl::Module) -> Vec<(SignalId, u32)> {
    m.outputs()
        .into_iter()
        .filter(|&s| m.signal_width(s) == 1)
        .map(|s| (s, 0))
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut campaign = Campaign::new();
    for d in gm_designs::catalog() {
        let module = d.module();
        // Bound the two big lite blocks like the integration suite does.
        let (backend, max_iterations, targets) = match d.name {
            "b17_lite" | "b18_lite" => (
                Backend::KInduction { max_k: 1 },
                2,
                vec![one_bit_targets(&module)[0]],
            ),
            _ => (Backend::Auto, 32, one_bit_targets(&module)),
        };
        let config = EngineConfig {
            window: d.window,
            stimulus: SeedStimulus::Random { cycles: 48 },
            targets: TargetSelection::Bits(targets),
            backend,
            max_iterations,
            unknown: UnknownPolicy::AssumeTrue,
            shards: ShardPolicy::PerCore,
            record_coverage: false,
            ..EngineConfig::default()
        };
        campaign.push(d.name, module, config);
    }
    let jobs = campaign.len();
    let workers = std::thread::available_parallelism().map(|n| n.get())?;
    println!("closing {jobs} designs on {workers} workers, per-core shard sessions\n");
    let t0 = std::time::Instant::now();
    let summary = campaign.run();
    print!("{}", summary.report());
    println!("wall time: {:.2?}", t0.elapsed());
    Ok(())
}
